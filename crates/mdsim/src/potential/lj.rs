//! Lennard-Jones 12-6 pair potential, energy-shifted at the cutoff.
//!
//! `u(r) = 4ε[(σ/r)¹² − (σ/r)⁶] − u_raw(r_c)` for `r < r_c`.
//!
//! Supports per-type-pair parameters and an exclusion list (bonded
//! 1-2/1-3 pairs in molecular systems are excluded from non-bonded
//! interactions, as is standard).

use super::Potential;
use crate::neighbor::NeighborList;
use crate::state::State;
use crate::vec3::Vec3;
use std::collections::HashSet;

/// Parameters for one type pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct LjPair {
    /// Well depth ε (eV). Zero disables the pair.
    pub epsilon: f64,
    /// Length scale σ (Å).
    pub sigma: f64,
}

/// Lennard-Jones potential over all type pairs.
pub struct LennardJones {
    /// `params[ti][tj]`, symmetric.
    params: Vec<Vec<LjPair>>,
    cutoff: f64,
    /// Energy shift per type pair so `u(r_c) = 0`.
    shift: Vec<Vec<f64>>,
    /// Excluded (unordered) atom pairs.
    exclusions: HashSet<(usize, usize)>,
}

impl LennardJones {
    /// Build from a symmetric per-type-pair table.
    pub fn new(params: Vec<Vec<LjPair>>, cutoff: f64) -> Self {
        assert!(cutoff > 0.0, "LJ cutoff must be positive");
        let nt = params.len();
        for row in &params {
            assert_eq!(row.len(), nt, "LJ parameter table must be square");
        }
        let mut shift = vec![vec![0.0; nt]; nt];
        for (i, row) in params.iter().enumerate() {
            for (j, p) in row.iter().enumerate() {
                shift[i][j] = raw_energy(p, cutoff);
            }
        }
        LennardJones { params, cutoff, shift, exclusions: HashSet::new() }
    }

    /// Single-species convenience constructor.
    pub fn single(epsilon: f64, sigma: f64, cutoff: f64) -> Self {
        LennardJones::new(vec![vec![LjPair { epsilon, sigma }]], cutoff)
    }

    /// Exclude the given unordered atom pairs from the interaction.
    pub fn with_exclusions(mut self, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        self.exclusions = pairs
            .into_iter()
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        self
    }
}

fn raw_energy(p: &LjPair, r: f64) -> f64 {
    if p.epsilon == 0.0 {
        return 0.0;
    }
    let sr6 = (p.sigma / r).powi(6);
    4.0 * p.epsilon * (sr6 * sr6 - sr6)
}

/// `du/dr`.
fn raw_dudr(p: &LjPair, r: f64) -> f64 {
    if p.epsilon == 0.0 {
        return 0.0;
    }
    let sr6 = (p.sigma / r).powi(6);
    4.0 * p.epsilon * (-12.0 * sr6 * sr6 + 6.0 * sr6) / r
}

impl Potential for LennardJones {
    fn cutoff(&self) -> f64 {
        self.cutoff
    }

    fn name(&self) -> &'static str {
        "lennard-jones"
    }

    fn compute(&self, state: &State, nl: &NeighborList, forces: &mut [Vec3]) -> f64 {
        let mut energy = 0.0;
        for pair in nl.pairs() {
            if pair.dist >= self.cutoff {
                continue;
            }
            if !self.exclusions.is_empty()
                && self.exclusions.contains(&(pair.i.min(pair.j), pair.i.max(pair.j)))
            {
                continue;
            }
            let (ti, tj) = (state.types[pair.i], state.types[pair.j]);
            let p = &self.params[ti][tj];
            if p.epsilon == 0.0 {
                continue;
            }
            energy += raw_energy(p, pair.dist) - self.shift[ti][tj];
            let dudr = raw_dudr(p, pair.dist);
            // f_i = dU/dr · r̂_ij ; f_j = −f_i (r̂ points from i to j).
            let f = pair.rij * (dudr / pair.dist);
            forces[pair.i] += f;
            forces[pair.j] -= f;
        }
        energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{fcc, water_box, Species};
    use crate::potential::check_forces_fd;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn minimum_at_r_min() {
        let p = LjPair { epsilon: 1.0, sigma: 1.0 };
        let r_min = 2f64.powf(1.0 / 6.0);
        assert!(raw_dudr(&p, r_min).abs() < 1e-12);
        assert!((raw_energy(&p, r_min) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_is_zero_at_cutoff() {
        let lj = LennardJones::single(0.5, 2.3, 5.0);
        let p = LjPair { epsilon: 0.5, sigma: 2.3 };
        assert!((raw_energy(&p, 5.0) - lj.shift[0][0]).abs() < 1e-15);
    }

    #[test]
    fn forces_match_finite_difference_on_perturbed_fcc() {
        let mut s = fcc(Species::new("Ar", 39.9), 5.26, [2, 2, 2]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        s.jitter_positions(0.15, &mut rng);
        let lj = LennardJones::single(0.0104, 3.4, 5.2);
        check_forces_fd(&lj, &s, 1e-5, 1e-5);
    }

    #[test]
    fn excluded_pairs_do_not_interact() {
        let s = water_box(8);
        let nt = 2;
        let mut params = vec![vec![LjPair::default(); nt]; nt];
        params[0][0] = LjPair { epsilon: 0.0067, sigma: 3.165 };
        let excl: Vec<(usize, usize)> = s.topology.bonds.iter().map(|b| (b.i, b.j)).collect();
        let lj_excl = LennardJones::new(params.clone(), 3.0).with_exclusions(excl);
        let lj_all = LennardJones::new(params, 3.0);
        let nl = crate::neighbor::NeighborList::build(&s.cell, &s.pos, 3.0);
        let mut f1 = vec![Vec3::ZERO; s.n_atoms()];
        let mut f2 = vec![Vec3::ZERO; s.n_atoms()];
        let e1 = lj_excl.compute(&s, &nl, &mut f1);
        let e2 = lj_all.compute(&s, &nl, &mut f2);
        // O–H bonds involve type 1 whose ε is zero here, so exclusion
        // should not change anything in this configuration…
        assert!((e1 - e2).abs() < 1e-12);
        // …but with H–H interactions enabled it must.
        let mut params = vec![vec![LjPair::default(); nt]; nt];
        params[1][1] = LjPair { epsilon: 0.01, sigma: 1.2 };
        let hh_excl: Vec<(usize, usize)> = s
            .topology
            .angles
            .iter()
            .map(|a| (a.i, a.k))
            .collect();
        let lj_excl = LennardJones::new(params.clone(), 3.0).with_exclusions(hh_excl);
        let lj_all = LennardJones::new(params, 3.0);
        let mut f = vec![Vec3::ZERO; s.n_atoms()];
        let e_excl = lj_excl.compute(&s, &nl, &mut f);
        let e_all = lj_all.compute(&s, &nl, &mut f);
        assert!(e_excl != e_all, "exclusions must remove intra-molecular H–H terms");
    }

    #[test]
    fn multi_type_table_respected() {
        // Two types where only cross interactions are active.
        let mut s = fcc(Species::new("A", 10.0), 4.0, [2, 2, 2]);
        s.type_names = vec!["A".into(), "B".into()];
        s.masses = vec![10.0, 20.0];
        for (i, t) in s.types.iter_mut().enumerate() {
            *t = i % 2;
        }
        let mut params = vec![vec![LjPair::default(); 2]; 2];
        params[0][1] = LjPair { epsilon: 0.3, sigma: 2.2 };
        params[1][0] = LjPair { epsilon: 0.3, sigma: 2.2 };
        let lj = LennardJones::new(params, 3.9);
        check_forces_fd(&lj, &s, 1e-5, 1e-5);
    }
}
