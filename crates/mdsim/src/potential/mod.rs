//! Potential-energy models with analytic forces.
//!
//! These are the synthetic stand-ins for the DFT labelling engine the
//! paper used (see `DESIGN.md` §1): smooth, physically-shaped classical
//! potentials whose energies and exact analytic forces label the training
//! snapshots. Every implementation is verified against central finite
//! differences in the test suites, which guarantees the crucial property
//! the DeePMD loss relies on: `F = −∇E` exactly.
//!
//! Families:
//! * [`lj`] — Lennard-Jones 12-6 (cut/shifted),
//! * [`morse`] — Morse pair potential (metals without EAM parameters,
//!   metal–oxygen bonds in the CuO surrogate),
//! * [`sutton_chen`] — Sutton–Chen EAM (Cu, Al),
//! * [`stillinger_weber`] — three-body Stillinger–Weber (Si),
//! * [`coulomb`] — damped-shifted-force electrostatics (ionic crystals,
//!   water),
//! * [`buckingham`] — Buckingham/Born–Mayer short-range repulsion
//!   (NaCl, HfO₂, CuO oxygen–oxygen),
//! * [`bonded`] — harmonic bonds and angles (flexible SPC-like water).

pub mod bonded;
pub mod buckingham;
pub mod coulomb;
pub mod lj;
pub mod morse;
pub mod stillinger_weber;
pub mod sutton_chen;

use crate::neighbor::NeighborList;
use crate::state::State;
use crate::vec3::Vec3;

/// A potential-energy model over a periodic atomic configuration.
pub trait Potential: Send + Sync {
    /// Interaction cutoff (Å). The caller builds a neighbour list with at
    /// least this cutoff; implementations must ignore pairs beyond it.
    fn cutoff(&self) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Accumulate forces (eV/Å) into `forces` and return the potential
    /// energy contribution (eV). `forces` is *not* zeroed here so that
    /// composite potentials can accumulate.
    fn compute(&self, state: &State, nl: &NeighborList, forces: &mut [Vec3]) -> f64;
}

/// Sum of component potentials (e.g. Buckingham + Coulomb + bonded).
pub struct Composite {
    parts: Vec<Box<dyn Potential>>,
}

impl Composite {
    /// Build from parts. Panics if empty.
    pub fn new(parts: Vec<Box<dyn Potential>>) -> Self {
        assert!(!parts.is_empty(), "Composite: needs at least one part");
        Composite { parts }
    }
}

impl Potential for Composite {
    fn cutoff(&self) -> f64 {
        self.parts
            .iter()
            .map(|p| p.cutoff())
            .fold(0.0, f64::max)
    }

    fn name(&self) -> &'static str {
        "composite"
    }

    fn compute(&self, state: &State, nl: &NeighborList, forces: &mut [Vec3]) -> f64 {
        self.parts
            .iter()
            .map(|p| p.compute(state, nl, forces))
            .sum()
    }
}

/// Evaluate energy and freshly-allocated forces in one call.
pub fn energy_forces(pot: &dyn Potential, state: &State, nl: &NeighborList) -> (f64, Vec<Vec3>) {
    let mut forces = vec![Vec3::ZERO; state.n_atoms()];
    let e = pot.compute(state, nl, &mut forces);
    (e, forces)
}

/// Test helper (exposed for the other potential modules and downstream
/// crates): verify `forces == −∇E` by central finite differences on a
/// handful of atoms.
///
/// `h` is the displacement step; `tol` the relative tolerance.
pub fn check_forces_fd(pot: &dyn Potential, state: &State, h: f64, tol: f64) {
    let nl = NeighborList::build(&state.cell, &state.pos, pot.cutoff());
    let (_, forces) = energy_forces(pot, state, &nl);
    let n = state.n_atoms();
    // Probe a deterministic subset of atoms to keep tests fast.
    let stride = (n / 6).max(1);
    for i in (0..n).step_by(stride) {
        for k in 0..3 {
            let eval = |delta: f64| -> f64 {
                let mut s = state.clone();
                s.pos[i].0[k] += delta;
                let nl = NeighborList::build(&s.cell, &s.pos, pot.cutoff());
                let mut f = vec![Vec3::ZERO; n];
                pot.compute(&s, &nl, &mut f)
            };
            let fd = -(eval(h) - eval(-h)) / (2.0 * h);
            let an = forces[i].0[k];
            let scale = 1.0 + fd.abs().max(an.abs());
            assert!(
                (fd - an).abs() <= tol * scale,
                "{}: atom {i} comp {k}: fd={fd:.8} analytic={an:.8}",
                pot.name()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{fcc, Species};
    use crate::neighbor::NeighborList;

    #[test]
    fn composite_sums_energy_and_forces() {
        let s = fcc(Species::new("Cu", 63.5), 3.6, [2, 2, 2]);
        let a = lj::LennardJones::single(0.4, 2.3, 3.5);
        let b = lj::LennardJones::single(0.2, 2.1, 3.5);
        let nl = NeighborList::build(&s.cell, &s.pos, 3.5);
        let (ea, fa) = energy_forces(&a, &s, &nl);
        let (eb, fb) = energy_forces(&b, &s, &nl);
        let comp = Composite::new(vec![
            Box::new(lj::LennardJones::single(0.4, 2.3, 3.5)),
            Box::new(lj::LennardJones::single(0.2, 2.1, 3.5)),
        ]);
        let (ec, fc) = energy_forces(&comp, &s, &nl);
        assert!((ec - (ea + eb)).abs() < 1e-10);
        for i in 0..s.n_atoms() {
            assert!((fc[i] - (fa[i] + fb[i])).norm() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "needs at least one part")]
    fn empty_composite_panics() {
        let _ = Composite::new(Vec::new());
    }
}
