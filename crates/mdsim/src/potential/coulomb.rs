//! Damped-shifted-force (DSF) electrostatics.
//!
//! The Fennell–Gezelter form: with `v(r) = erfc(αr)/r`,
//!
//! `u(r) = k·q_i·q_j·[v(r) − v(r_c) − v'(r_c)·(r − r_c)]`
//!
//! which has both `u(r_c) = 0` and `u'(r_c) = 0`, making it a smooth
//! short-ranged surrogate for Ewald summation — well suited to labelling
//! training data for the ionic systems (NaCl, CuO, HfO₂) and water.
//!
//! `erfc` is implemented with the Abramowitz–Stegun 7.1.26 rational
//! approximation (|error| < 1.5·10⁻⁷), accurate well past the force
//! tolerances used in training labels.

use super::Potential;
use crate::neighbor::NeighborList;
use crate::state::State;
use crate::units::COULOMB_EV_A;
use crate::vec3::Vec3;
use std::collections::HashSet;

/// Complementary error function (Abramowitz–Stegun 7.1.26, x ≥ 0
/// extended by symmetry).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

/// DSF Coulomb potential with per-type charges.
pub struct CoulombDsf {
    /// Charge per type id, in units of |e|.
    charges: Vec<f64>,
    /// Damping parameter α (1/Å).
    alpha: f64,
    cutoff: f64,
    /// `v(r_c)`.
    v_rc: f64,
    /// `v'(r_c)`.
    dv_rc: f64,
    exclusions: HashSet<(usize, usize)>,
}

impl CoulombDsf {
    /// Build with charges indexed by type id, damping `alpha` (typical
    /// 0.2/Å) and cutoff (Å).
    pub fn new(charges: Vec<f64>, alpha: f64, cutoff: f64) -> Self {
        assert!(cutoff > 0.0 && alpha > 0.0, "CoulombDsf: bad parameters");
        let v_rc = erfc(alpha * cutoff) / cutoff;
        let dv_rc = -erfc(alpha * cutoff) / (cutoff * cutoff)
            - 2.0 * alpha / std::f64::consts::PI.sqrt() * (-alpha * alpha * cutoff * cutoff).exp()
                / cutoff;
        CoulombDsf { charges, alpha, cutoff, v_rc, dv_rc, exclusions: HashSet::new() }
    }

    /// Exclude the given unordered atom pairs (bonded 1-2/1-3 pairs).
    pub fn with_exclusions(mut self, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        self.exclusions = pairs
            .into_iter()
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        self
    }

    /// `(u, du/dr)` for unit charges at distance `r`.
    fn kernel(&self, r: f64) -> (f64, f64) {
        let v = erfc(self.alpha * r) / r;
        let dv = -erfc(self.alpha * r) / (r * r)
            - 2.0 * self.alpha / std::f64::consts::PI.sqrt()
                * (-self.alpha * self.alpha * r * r).exp()
                / r;
        (
            v - self.v_rc - self.dv_rc * (r - self.cutoff),
            dv - self.dv_rc,
        )
    }
}

impl Potential for CoulombDsf {
    fn cutoff(&self) -> f64 {
        self.cutoff
    }

    fn name(&self) -> &'static str {
        "coulomb-dsf"
    }

    fn compute(&self, state: &State, nl: &NeighborList, forces: &mut [Vec3]) -> f64 {
        let mut energy = 0.0;
        for pair in nl.pairs() {
            if pair.dist >= self.cutoff {
                continue;
            }
            if !self.exclusions.is_empty()
                && self.exclusions.contains(&(pair.i.min(pair.j), pair.i.max(pair.j)))
            {
                continue;
            }
            let qq = self.charges[state.types[pair.i]] * self.charges[state.types[pair.j]];
            if qq == 0.0 {
                continue;
            }
            let (u, du) = self.kernel(pair.dist);
            let scale = COULOMB_EV_A * qq;
            energy += scale * u;
            let f = pair.rij * (scale * du / pair.dist);
            forces[pair.i] += f;
            forces[pair.j] -= f;
        }
        energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{rocksalt, Species};
    use crate::neighbor::NeighborList;
    use crate::potential::{check_forces_fd, energy_forces};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1, erfc(∞) → 0, erfc(1) ≈ 0.157299.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(6.0) < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        // Symmetry: erfc(−x) = 2 − erfc(x).
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-12);
    }

    #[test]
    fn kernel_vanishes_smoothly_at_cutoff() {
        let pot = CoulombDsf::new(vec![1.0], 0.2, 8.0);
        let (u, du) = pot.kernel(8.0 - 1e-9);
        assert!(u.abs() < 1e-10, "u(rc) = {u}");
        assert!(du.abs() < 1e-9, "u'(rc) = {du}");
    }

    #[test]
    fn opposite_charges_attract() {
        let pot = CoulombDsf::new(vec![1.0, -1.0], 0.2, 8.0);
        // u for unlike charges must be negative at short range.
        let (u, _) = pot.kernel(2.5);
        assert!(u > 0.0, "raw kernel positive for unit like charges");
        // Energy with q1*q2 = −1 is negative:
        assert!(-COULOMB_EV_A * u < 0.0);
    }

    #[test]
    fn rocksalt_madelung_energy_is_negative() {
        let s = rocksalt(Species::new("Na", 23.0), Species::new("Cl", 35.5), 5.64, [2, 2, 2]);
        let pot = CoulombDsf::new(vec![1.0, -1.0], 0.2, 5.5);
        let nl = NeighborList::build(&s.cell, &s.pos, pot.cutoff());
        let (e, _) = energy_forces(&pot, &s, &nl);
        assert!(e < 0.0, "ionic lattice must be bound, e = {e}");
    }

    #[test]
    fn forces_match_finite_difference() {
        let mut s = rocksalt(Species::new("Na", 23.0), Species::new("Cl", 35.5), 5.64, [2, 2, 2]);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        s.jitter_positions(0.12, &mut rng);
        let pot = CoulombDsf::new(vec![1.0, -1.0], 0.25, 5.0);
        check_forces_fd(&pot, &s, 1e-5, 1e-4);
    }

    #[test]
    fn exclusions_remove_pair_energy() {
        let s = rocksalt(Species::new("Na", 23.0), Species::new("Cl", 35.5), 5.64, [2, 2, 2]);
        let nl = NeighborList::build(&s.cell, &s.pos, 5.0);
        let all = CoulombDsf::new(vec![1.0, -1.0], 0.25, 5.0);
        let nearest = nl.pairs()[0];
        let excl = CoulombDsf::new(vec![1.0, -1.0], 0.25, 5.0)
            .with_exclusions([(nearest.i, nearest.j)]);
        let mut f = vec![Vec3::ZERO; s.n_atoms()];
        let e_all = all.compute(&s, &nl, &mut f);
        let e_excl = excl.compute(&s, &nl, &mut f);
        assert!(e_all != e_excl);
    }
}
