//! Intramolecular bonded terms: harmonic bonds and angles.
//!
//! `u_bond = k_b (r − r₀)²`, `u_angle = k_a (θ − θ₀)²` — the flexible
//! SPC-style water model. Bonded interactions are driven by the
//! [`crate::state::Topology`], not the neighbour list (covalent bonds
//! never break in our labelling runs).

use super::Potential;
use crate::neighbor::NeighborList;
use crate::state::State;
use crate::vec3::Vec3;

/// Harmonic bonds + angles.
pub struct HarmonicBonded {
    /// Bond stiffness k_b (eV/Å²).
    pub k_bond: f64,
    /// Bond rest length r₀ (Å).
    pub r0: f64,
    /// Angle stiffness k_a (eV/rad²).
    pub k_angle: f64,
    /// Rest angle θ₀ (rad).
    pub theta0: f64,
}

impl HarmonicBonded {
    /// Flexible SPC-like water parameters (k_b ≈ 22.96 eV/Å² per the
    /// SPC/Fw force field — note SPC/Fw quotes `k/2`-convention values;
    /// here `u = k (r−r₀)²` directly).
    pub fn spc_fw_water() -> Self {
        HarmonicBonded {
            k_bond: 22.965,
            r0: 1.012,
            k_angle: 1.645,
            theta0: (113.24f64).to_radians(),
        }
    }
}

impl Potential for HarmonicBonded {
    fn cutoff(&self) -> f64 {
        // Bonded terms use the topology; the neighbour cutoff only needs
        // to accommodate the other (non-bonded) parts of a composite.
        0.0
    }

    fn name(&self) -> &'static str {
        "harmonic-bonded"
    }

    fn compute(&self, state: &State, _nl: &NeighborList, forces: &mut [Vec3]) -> f64 {
        let mut energy = 0.0;

        for b in &state.topology.bonds {
            let rij = state.cell.min_image(&state.pos[b.i], &state.pos[b.j]);
            let r = rij.norm();
            let dr = r - self.r0;
            energy += self.k_bond * dr * dr;
            // dU/dr = 2 k dr; force on i along +r̂ (towards j) when
            // stretched.
            let f = rij * (2.0 * self.k_bond * dr / r);
            forces[b.i] += f;
            forces[b.j] -= f;
        }

        for a in &state.topology.angles {
            // u = r_i − r_j (centre j), v = r_k − r_j.
            let u = state.cell.min_image(&state.pos[a.j], &state.pos[a.i]);
            let v = state.cell.min_image(&state.pos[a.j], &state.pos[a.k]);
            let ru = u.norm();
            let rv = v.norm();
            let cos = (u.dot(&v) / (ru * rv)).clamp(-1.0, 1.0);
            let theta = cos.acos();
            let dt = theta - self.theta0;
            energy += self.k_angle * dt * dt;

            let sin = (1.0 - cos * cos).sqrt().max(1e-8);
            // dU/dcosθ = 2 k dt · dθ/dcosθ = −2 k dt / sinθ.
            let dudcos = -2.0 * self.k_angle * dt / sin;
            let dcos_du = (v * (1.0 / (ru * rv))) - (u * (cos / (ru * ru)));
            let dcos_dv = (u * (1.0 / (ru * rv))) - (v * (cos / (rv * rv)));

            let grad_i = dcos_du * dudcos;
            let grad_k = dcos_dv * dudcos;
            forces[a.i] -= grad_i;
            forces[a.k] -= grad_k;
            forces[a.j] += grad_i + grad_k;
        }
        energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::water_box;
    use crate::neighbor::NeighborList;
    use crate::potential::{check_forces_fd, energy_forces};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn equilibrium_geometry_has_zero_energy() {
        let s = water_box(8);
        let pot = HarmonicBonded::spc_fw_water();
        let nl = NeighborList::build(&s.cell, &s.pos, 1.5);
        let (e, f) = energy_forces(&pot, &s, &nl);
        assert!(e.abs() < 1e-9, "rest geometry energy = {e}");
        for fi in &f {
            assert!(fi.norm() < 1e-7);
        }
    }

    #[test]
    fn stretched_bond_pulls_back() {
        let mut s = water_box(1);
        // Stretch the first O–H bond along its axis.
        let b = s.topology.bonds[0];
        let dir = s.cell.min_image(&s.pos[b.i], &s.pos[b.j]);
        let unit = dir * (1.0 / dir.norm());
        s.pos[b.j] += unit * 0.2;
        let pot = HarmonicBonded::spc_fw_water();
        let nl = NeighborList::build(&s.cell, &s.pos, 1.5);
        let (e, f) = energy_forces(&pot, &s, &nl);
        assert!(e > 0.0);
        // Force on the stretched H must point back towards O.
        assert!(f[b.j].dot(&unit) < 0.0);
    }

    #[test]
    fn forces_match_finite_difference_on_distorted_water() {
        let mut s = water_box(8);
        let mut rng = ChaCha8Rng::seed_from_u64(37);
        s.jitter_positions(0.08, &mut rng);
        let pot = HarmonicBonded::spc_fw_water();
        check_forces_fd(&pot, &s, 1e-6, 1e-5);
    }

    #[test]
    fn angle_energy_is_symmetric_in_flanks() {
        let mut s = water_box(1);
        let a = s.topology.angles[0];
        let pot = HarmonicBonded::spc_fw_water();
        let nl = NeighborList::build(&s.cell, &s.pos, 1.5);
        // Perturb H1 and H2 symmetrically; energies must match.
        let mut s1 = s.clone();
        s1.pos[a.i].0[2] += 0.1;
        let e1 = energy_forces(&pot, &s1, &nl).0;
        s.pos[a.k].0[2] += 0.1;
        let e2 = energy_forces(&pot, &s, &nl).0;
        assert!((e1 - e2).abs() < 1e-9);
    }
}
