//! Buckingham (Born–Mayer + dispersion) short-range potential,
//! energy-shifted at the cutoff.
//!
//! `u(r) = A·e^{−r/ρ} − C/r⁶ − u_raw(r_c)`.
//!
//! Used for the short-range repulsion of the ionic systems (NaCl, HfO₂,
//! CuO oxygen–oxygen). A cubic core guard is added below `r_core` to
//! remove the classic "Buckingham catastrophe" (the −C/r⁶ term diverging
//! at tiny separations), keeping high-temperature MD labelling stable.
//! The guard is C²-continuous at `r_core`.

use super::Potential;
use crate::neighbor::NeighborList;
use crate::state::State;
use crate::vec3::Vec3;

/// Buckingham parameters for one type pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuckPair {
    /// Repulsion amplitude A (eV). Zero disables the pair.
    pub a: f64,
    /// Repulsion decay ρ (Å).
    pub rho: f64,
    /// Dispersion coefficient C (eV·Å⁶).
    pub c: f64,
    /// Hard-core guard radius (Å). Zero disables the guard.
    pub r_core: f64,
}

/// Buckingham potential over all type pairs.
pub struct Buckingham {
    params: Vec<Vec<BuckPair>>,
    cutoff: f64,
    shift: Vec<Vec<f64>>,
}

const CORE_K: f64 = 2000.0; // eV/Å³ guard stiffness

fn raw_energy(p: &BuckPair, r: f64) -> f64 {
    if p.a == 0.0 {
        return 0.0;
    }
    let mut u = p.a * (-r / p.rho).exp() - p.c / r.powi(6);
    if p.r_core > 0.0 && r < p.r_core {
        let d = p.r_core - r;
        u += CORE_K * d * d * d;
    }
    u
}

fn raw_dudr(p: &BuckPair, r: f64) -> f64 {
    if p.a == 0.0 {
        return 0.0;
    }
    let mut du = -p.a / p.rho * (-r / p.rho).exp() + 6.0 * p.c / r.powi(7);
    if p.r_core > 0.0 && r < p.r_core {
        let d = p.r_core - r;
        du -= 3.0 * CORE_K * d * d;
    }
    du
}

impl Buckingham {
    /// Build from a symmetric per-type-pair table.
    pub fn new(params: Vec<Vec<BuckPair>>, cutoff: f64) -> Self {
        assert!(cutoff > 0.0, "Buckingham cutoff must be positive");
        let nt = params.len();
        for row in &params {
            assert_eq!(row.len(), nt, "Buckingham parameter table must be square");
        }
        let mut shift = vec![vec![0.0; nt]; nt];
        for (i, row) in params.iter().enumerate() {
            for (j, p) in row.iter().enumerate() {
                shift[i][j] = raw_energy(p, cutoff);
            }
        }
        Buckingham { params, cutoff, shift }
    }
}

impl Potential for Buckingham {
    fn cutoff(&self) -> f64 {
        self.cutoff
    }

    fn name(&self) -> &'static str {
        "buckingham"
    }

    fn compute(&self, state: &State, nl: &NeighborList, forces: &mut [Vec3]) -> f64 {
        let mut energy = 0.0;
        for pair in nl.pairs() {
            if pair.dist >= self.cutoff {
                continue;
            }
            let (ti, tj) = (state.types[pair.i], state.types[pair.j]);
            let p = &self.params[ti][tj];
            if p.a == 0.0 {
                continue;
            }
            energy += raw_energy(p, pair.dist) - self.shift[ti][tj];
            let f = pair.rij * (raw_dudr(p, pair.dist) / pair.dist);
            forces[pair.i] += f;
            forces[pair.j] -= f;
        }
        energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{rocksalt, Species};
    use crate::potential::check_forces_fd;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn nacl_params() -> Vec<Vec<BuckPair>> {
        // Fumi–Tosi-style Na–Cl repulsion.
        let mut t = vec![vec![BuckPair::default(); 2]; 2];
        t[0][1] = BuckPair { a: 1256.31, rho: 0.3169, c: 0.0, r_core: 0.8 };
        t[1][0] = t[0][1];
        t[1][1] = BuckPair { a: 3485.0, rho: 0.2964, c: 29.06, r_core: 1.6 };
        t
    }

    #[test]
    fn repulsion_grows_at_short_range() {
        let p = BuckPair { a: 1000.0, rho: 0.3, c: 0.0, r_core: 0.0 };
        assert!(raw_energy(&p, 1.5) > raw_energy(&p, 2.5));
        assert!(raw_dudr(&p, 2.0) < 0.0);
    }

    #[test]
    fn core_guard_dominates_dispersion() {
        // With C ≠ 0 the unguarded energy dives to −∞ as r → 0; the guard
        // must flip it repulsive below r_core.
        let p = BuckPair { a: 100.0, rho: 0.3, c: 50.0, r_core: 1.5 };
        assert!(raw_energy(&p, 0.8) > 0.0, "guarded core must be repulsive");
    }

    #[test]
    fn guard_is_continuous_at_r_core() {
        let p = BuckPair { a: 100.0, rho: 0.3, c: 50.0, r_core: 1.5 };
        let below = raw_energy(&p, 1.5 - 1e-9);
        let above = raw_energy(&p, 1.5 + 1e-9);
        assert!((below - above).abs() < 1e-6);
        let dbelow = raw_dudr(&p, 1.5 - 1e-9);
        let dabove = raw_dudr(&p, 1.5 + 1e-9);
        assert!((dbelow - dabove).abs() < 1e-6);
    }

    #[test]
    fn forces_match_finite_difference() {
        let mut s = rocksalt(Species::new("Na", 23.0), Species::new("Cl", 35.5), 5.64, [2, 2, 2]);
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        s.jitter_positions(0.1, &mut rng);
        let pot = Buckingham::new(nacl_params(), 5.0);
        check_forces_fd(&pot, &s, 1e-5, 1e-5);
    }
}
