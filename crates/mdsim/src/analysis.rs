//! Trajectory analysis: structural and thermodynamic diagnostics used
//! to validate NNMD simulations against the labelling oracle.
//!
//! * [`Rdf`] — radial distribution function g(r), the standard
//!   structural fingerprint: if a trained potential reproduces the
//!   oracle's g(r), the learned physics is right where it matters,
//! * [`energy_drift_per_atom`] — NVE conservation measure,
//! * [`TemperatureSeries`] — running thermostat diagnostics.

use crate::cell::Cell;
use crate::state::State;
use crate::vec3::Vec3;

/// Radial distribution function accumulator.
#[derive(Clone, Debug)]
pub struct Rdf {
    r_max: f64,
    bins: Vec<f64>,
    n_frames: usize,
    n_atoms: usize,
    volume: f64,
}

impl Rdf {
    /// Create with `n_bins` bins up to `r_max` (Å).
    ///
    /// # Panics
    /// Panics if `r_max ≤ 0` or `n_bins == 0`.
    pub fn new(r_max: f64, n_bins: usize) -> Self {
        assert!(r_max > 0.0 && n_bins > 0, "Rdf: bad parameters");
        Rdf { r_max, bins: vec![0.0; n_bins], n_frames: 0, n_atoms: 0, volume: 0.0 }
    }

    /// Accumulate one configuration (positions under PBC).
    ///
    /// # Panics
    /// Panics if `r_max` exceeds half the box (minimum-image limit).
    pub fn accumulate(&mut self, cell: &Cell, pos: &[Vec3]) {
        assert!(
            self.r_max <= 0.5 * cell.min_length() + 1e-9,
            "Rdf r_max beyond the minimum-image limit"
        );
        let n = pos.len();
        let n_bins = self.bins.len();
        let dr = self.r_max / n_bins as f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = cell.min_image(&pos[i], &pos[j]).norm();
                if d < self.r_max {
                    let bin = ((d / dr) as usize).min(n_bins - 1);
                    // Each pair counts twice (i sees j, j sees i).
                    self.bins[bin] += 2.0;
                }
            }
        }
        self.n_frames += 1;
        self.n_atoms = n;
        self.volume = cell.volume();
    }

    /// Normalized `g(r)`: returns `(r_mid, g)` pairs. Empty if nothing
    /// was accumulated.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        if self.n_frames == 0 || self.n_atoms == 0 {
            return Vec::new();
        }
        let dr = self.r_max / self.bins.len() as f64;
        let rho = self.n_atoms as f64 / self.volume;
        let norm_frames = self.n_frames as f64 * self.n_atoms as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(k, &count)| {
                let r_lo = k as f64 * dr;
                let r_hi = r_lo + dr;
                let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
                let ideal = rho * shell;
                (r_lo + 0.5 * dr, count / (norm_frames * ideal))
            })
            .collect()
    }

    /// L1 distance between two normalized RDFs (same binning assumed):
    /// a scalar "structural error" for potential validation.
    pub fn l1_distance(&self, other: &Rdf) -> f64 {
        let a = self.normalized();
        let b = other.normalized();
        assert_eq!(a.len(), b.len(), "Rdf::l1_distance: binning mismatch");
        let n = a.len().max(1) as f64;
        a.iter().zip(&b).map(|((_, x), (_, y))| (x - y).abs()).sum::<f64>() / n
    }
}

/// Absolute total-energy drift per atom between the start and end of an
/// NVE trajectory, given `(potential, kinetic)` samples.
pub fn energy_drift_per_atom(series: &[(f64, f64)], n_atoms: usize) -> f64 {
    if series.len() < 2 || n_atoms == 0 {
        return 0.0;
    }
    let first = series.first().map(|(p, k)| p + k).unwrap();
    let last = series.last().map(|(p, k)| p + k).unwrap();
    (last - first).abs() / n_atoms as f64
}

/// Running temperature statistics of a trajectory.
#[derive(Clone, Debug, Default)]
pub struct TemperatureSeries {
    samples: Vec<f64>,
}

impl TemperatureSeries {
    /// Record the instantaneous temperature of a state.
    pub fn record(&mut self, state: &State) {
        self.samples.push(state.temperature());
    }

    /// Mean over the recorded window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Standard deviation over the recorded window.
    pub fn std(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.samples.iter().map(|t| (t - m) * (t - m)).sum::<f64>()
            / (self.samples.len() - 1) as f64)
            .sqrt()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{fcc, Species};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ideal_gas_rdf_is_flat_near_one() {
        // Uniform random positions → g(r) ≈ 1 (away from tiny r where
        // statistics are thin).
        let cell = Cell::cubic(12.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut rdf = Rdf::new(5.0, 25);
        for _ in 0..40 {
            let pos: Vec<Vec3> = (0..200)
                .map(|_| {
                    Vec3::new(
                        rng.gen_range(0.0..12.0),
                        rng.gen_range(0.0..12.0),
                        rng.gen_range(0.0..12.0),
                    )
                })
                .collect();
            rdf.accumulate(&cell, &pos);
        }
        let g = rdf.normalized();
        for &(r, v) in g.iter().filter(|(r, _)| *r > 1.0) {
            assert!((v - 1.0).abs() < 0.15, "g({r:.2}) = {v:.3} should be ≈ 1");
        }
    }

    #[test]
    fn crystal_rdf_peaks_at_neighbour_shells() {
        let s = fcc(Species::new("Cu", 63.5), 3.6, [3, 3, 3]);
        let mut rdf = Rdf::new(5.0, 50);
        rdf.accumulate(&s.cell, &s.pos);
        let g = rdf.normalized();
        // First fcc shell at a/√2 ≈ 2.546.
        let nn = 3.6 / 2f64.sqrt();
        let peak_bin = g
            .iter()
            .filter(|(r, _)| (*r - nn).abs() < 0.2)
            .map(|(_, v)| *v)
            .fold(0.0, f64::max);
        assert!(peak_bin > 5.0, "first-shell peak missing: {peak_bin}");
        // No density below the nearest-neighbour distance.
        for &(r, v) in g.iter().filter(|(r, _)| *r < nn - 0.3) {
            assert!(v < 1e-9, "unexpected density at r = {r}");
        }
    }

    #[test]
    fn identical_trajectories_have_zero_rdf_distance() {
        let s = fcc(Species::new("Cu", 63.5), 3.6, [2, 2, 2]);
        let mut a = Rdf::new(3.5, 20);
        let mut b = Rdf::new(3.5, 20);
        a.accumulate(&s.cell, &s.pos);
        b.accumulate(&s.cell, &s.pos);
        assert!(a.l1_distance(&b) < 1e-12);
    }

    #[test]
    fn energy_drift_measures_endpoints() {
        let series = vec![(-10.0, 1.0), (-10.5, 1.4), (-10.2, 1.5)];
        // Total: -9.0 → -8.7 over 3 atoms → 0.1 per atom.
        assert!((energy_drift_per_atom(&series, 3) - 0.1).abs() < 1e-12);
        assert_eq!(energy_drift_per_atom(&[], 3), 0.0);
    }

    #[test]
    fn temperature_series_statistics() {
        let mut s = fcc(Species::new("Cu", 63.5), 3.6, [2, 2, 2]);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut series = TemperatureSeries::default();
        assert!(series.is_empty());
        for _ in 0..10 {
            s.init_velocities(300.0, &mut rng);
            series.record(&s);
        }
        assert_eq!(series.len(), 10);
        assert!((series.mean() - 300.0).abs() < 100.0);
        assert!(series.std() >= 0.0);
    }
}
