//! Thread-count determinism gate (ISSUE 2 acceptance criterion).
//!
//! The pool contract: block/chunk boundaries are a function of data
//! length only, and partial results combine in index order — so training
//! is a pure function of (data, seed, config) with the thread count an
//! invisible scheduling detail. These tests prove it end to end:
//! bitwise-identical weight trajectories, optimizer state, and DPCK
//! checkpoint bytes for `DP_POOL_THREADS ∈ {1, 2, 8}`, including a
//! kill-and-resume run executed entirely under the multithreaded pool.
//!
//! The pool is process-global, so the tests serialize on a mutex and
//! sweep thread counts in-process via `dp_pool::set_threads`.

use deepmd_core::config::ModelConfig;
use deepmd_core::model::DeepPotModel;
use dp_data::dataset::Dataset;
use dp_mdsim::lattice::{fcc, Species};
use dp_mdsim::md::{MdConfig, MdRunner};
use dp_mdsim::potential::lj::LennardJones;
use dp_optim::fekf::{Fekf, FekfConfig};
use dp_train::targets::Backend;
use dp_train::trainer::{RobustConfig, TrainConfig, Trainer};
use dp_train::TrainError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Mutex;

static POOL_LOCK: Mutex<()> = Mutex::new(());

const SWEEP: &[usize] = &[1, 2, 8];

fn tiny_dataset(n_frames: usize, seed: u64) -> Dataset {
    let s = fcc(Species::new("Ar", 39.9), 5.26, [2, 2, 2]);
    let pot = LennardJones::single(0.0104, 3.4, 4.2);
    let runner = MdRunner::new(&pot);
    let cfg = MdConfig {
        dt: 2.0,
        temperature: 60.0,
        friction: 0.05,
        equilibration: 40,
        stride: 4,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let frames = runner.sample(s, &cfg, n_frames, &mut rng);
    let mut ds = Dataset::new("ArLJ", vec!["Ar".into()]);
    for f in frames {
        ds.push(f);
    }
    ds
}

fn tiny_model(train: &Dataset) -> DeepPotModel {
    let mut cfg = ModelConfig::small(1, 4.2);
    cfg.rcut_smooth = 2.6;
    DeepPotModel::new(cfg, train)
}

fn trainer(bs: usize, epochs: usize) -> Trainer {
    trainer_cached(bs, epochs, true)
}

fn trainer_cached(bs: usize, epochs: usize, env_cache: bool) -> Trainer {
    Trainer::new(TrainConfig {
        batch_size: bs,
        max_epochs: epochs,
        target: None,
        eval_frames: 16,
        force_updates: 4,
        seed: 3,
        backend: Backend::Manual,
        eval_every: 0,
        env_cache,
    })
}

fn param_bits(m: &DeepPotModel) -> Vec<u64> {
    m.get_params().iter().map(|v| v.to_bits()).collect()
}

/// Full FEKF training runs at 1, 2 and 8 threads produce bit-identical
/// weights and bit-identical serialized optimizer state.
#[test]
fn fekf_training_is_bitwise_identical_across_thread_counts() {
    let _g = POOL_LOCK.lock().unwrap();
    let ds = tiny_dataset(16, 21);
    let run = |threads: usize| {
        dp_pool::set_threads(threads);
        let mut m = tiny_model(&ds);
        let mut opt = Fekf::new(&m.layer_sizes(), 4, FekfConfig::default());
        let out = trainer(4, 2).train_fekf(&mut m, &mut opt, &ds, None);
        assert!(out.iterations > 0);
        (param_bits(&m), opt.state_to_bytes())
    };
    let (p1, s1) = run(SWEEP[0]);
    for &t in &SWEEP[1..] {
        let (p, s) = run(t);
        assert_eq!(p1, p, "weights diverged at {t} threads");
        assert_eq!(s1, s, "optimizer state diverged at {t} threads");
    }
    dp_pool::set_threads(1);
}

/// The environment cache and the frame-parallel engine are invisible
/// to the trajectory: every (cache on/off) × (1, 2, 8 threads) cell
/// lands on bit-identical weights and optimizer state, and the cached
/// run rebuilds each geometry exactly once (steady-state hit rate 1).
#[test]
fn fekf_training_is_bitwise_identical_with_and_without_env_cache() {
    let _g = POOL_LOCK.lock().unwrap();
    let ds = tiny_dataset(16, 24);
    let run = |threads: usize, env_cache: bool| {
        dp_pool::set_threads(threads);
        let mut m = tiny_model(&ds);
        let mut opt = Fekf::new(&m.layer_sizes(), 4, FekfConfig::default());
        let out = trainer_cached(4, 2, env_cache).train_fekf(&mut m, &mut opt, &ds, None);
        if env_cache {
            assert_eq!(
                out.env_cache.misses,
                ds.len() as u64,
                "each geometry must be built exactly once"
            );
            assert!(out.env_cache.hits > out.env_cache.misses);
        } else {
            assert_eq!(out.env_cache.hits, 0, "disabled cache must never hit");
        }
        (param_bits(&m), opt.state_to_bytes())
    };
    let reference = run(1, false);
    for &t in SWEEP {
        for cached in [false, true] {
            assert_eq!(
                reference,
                run(t, cached),
                "trajectory diverged at {t} threads, cache={cached}"
            );
        }
    }
    dp_pool::set_threads(1);
}

/// DPCK checkpoint files written under different thread counts are
/// byte-for-byte identical.
#[test]
fn checkpoint_bytes_are_identical_across_thread_counts() {
    let _g = POOL_LOCK.lock().unwrap();
    let ds = tiny_dataset(16, 22);
    let run = |threads: usize| -> Vec<u8> {
        dp_pool::set_threads(threads);
        let dir = std::env::temp_dir().join(format!("dp_det_ck_{threads}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut m = tiny_model(&ds);
        let mut opt = Fekf::new(&m.layer_sizes(), 4, FekfConfig::default());
        let robust = RobustConfig {
            restore_best: false,
            checkpoint_every: 3,
            checkpoint_dir: Some(dir.clone()),
            ..RobustConfig::default()
        };
        trainer(4, 1)
            .train_fekf_robust(&mut m, &mut opt, &ds, None, &robust)
            .unwrap();
        let bytes = std::fs::read(dp_train::checkpoint::checkpoint_path(&dir)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    };
    let b1 = run(SWEEP[0]);
    for &t in &SWEEP[1..] {
        assert_eq!(b1, run(t), "DPCK bytes diverged at {t} threads");
    }
    dp_pool::set_threads(1);
}

/// Kill-and-resume under the multithreaded pool: a run checkpointed and
/// killed mid-epoch at 8 threads, resumed at 8 threads, lands bitwise on
/// the uninterrupted 1-thread trajectory.
#[test]
fn kill_and_resume_under_multithreaded_pool_matches_single_thread() {
    let _g = POOL_LOCK.lock().unwrap();
    let ds = tiny_dataset(16, 23);
    let t = trainer(4, 3);
    let no_chaos = RobustConfig { restore_best: false, ..RobustConfig::default() };

    // Reference: uninterrupted single-threaded run.
    dp_pool::set_threads(1);
    let mut m_ref = tiny_model(&ds);
    let mut o_ref = Fekf::new(&m_ref.layer_sizes(), 4, FekfConfig::default());
    t.train_fekf_robust(&mut m_ref, &mut o_ref, &ds, None, &no_chaos).unwrap();

    // Crash at 8 threads, mid-epoch, off the checkpoint boundary.
    dp_pool::set_threads(8);
    let dir = std::env::temp_dir().join("dp_det_resume_mt");
    let _ = std::fs::remove_dir_all(&dir);
    let mut m = tiny_model(&ds);
    let mut opt = Fekf::new(&m.layer_sizes(), 4, FekfConfig::default());
    let robust = RobustConfig {
        checkpoint_every: 2,
        checkpoint_dir: Some(dir.clone()),
        halt_after: Some(5),
        ..no_chaos.clone()
    };
    match t.train_fekf_robust(&mut m, &mut opt, &ds, None, &robust) {
        Err(TrainError::Halted { iterations }) => assert_eq!(iterations, 5),
        other => panic!("expected Halted, got {other:?}"),
    }

    // Resume, still at 8 threads, from the checkpoint alone.
    let mut m2 = tiny_model(&ds);
    let mut o2 = Fekf::new(&m2.layer_sizes(), 4, FekfConfig::default());
    let robust = RobustConfig {
        checkpoint_every: 2,
        checkpoint_dir: Some(dir.clone()),
        resume: true,
        ..no_chaos
    };
    let out = t.train_fekf_robust(&mut m2, &mut o2, &ds, None, &robust).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    dp_pool::set_threads(1);
    assert!(out.iterations > 5, "resume must continue past the crash point");

    assert_eq!(
        param_bits(&m_ref),
        param_bits(&m2),
        "multithreaded kill-and-resume diverged from the single-threaded trajectory"
    );
    assert_eq!(o_ref.state_to_bytes(), o2.state_to_bytes());
}
