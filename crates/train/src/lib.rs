//! # dp-train — training harness
//!
//! Orchestrates the paper's training protocols end to end:
//!
//! * [`targets`] — the Kalman-filter prediction targets of Algorithm 1:
//!   the sign-flipped gradients (`if ŷ ≥ y then ŷ = −ŷ`) and absolute
//!   errors for the energy update and the four atomic-force group
//!   updates,
//! * [`trainer`] — epoch loops for Adam (batch-mean loss gradients),
//!   RLEKF (instance-by-instance updates) and FEKF (early-reduced batch
//!   updates), plus the data-parallel FEKF loop over
//!   [`dp_parallel::DeviceGroup`] devices,
//! * [`gradients`] — the deterministic frame-parallel batch-gradient
//!   engine: fixed-block fan-out over `dp-pool`, index-order
//!   reduction, recycled per-block scratch (allocation-free steady
//!   state),
//! * [`metrics`] — phase timers (forward / gradient / KF — the
//!   decomposition of Figure 7(c)) and training histories,
//! * [`recipes`] — one-call experiment entry points used by the
//!   benchmark binaries,
//! * [`online`] — the Figure 1 online-learning loop: repeated
//!   retraining as new-temperature data arrives,
//! * [`checkpoint`] / [`error`] — the fault-tolerant runtime: crash-safe
//!   resumable snapshots (model + optimizer + sampler cursor) and the
//!   typed failures of the robust training loops,
//! * [`active`] — committee-based active learning (query-by-committee
//!   frame selection + oracle labelling + FEKF retraining), the
//!   workflow the paper's fast training enables.

pub mod active;
pub mod checkpoint;
pub mod error;
pub mod gradients;
pub mod metrics;
pub mod online;
pub mod recipes;
pub mod targets;
pub mod trainer;

pub use checkpoint::Checkpoint;
pub use error::TrainError;
pub use metrics::{PhaseTimes, TrainHistory};
pub use trainer::{RobustConfig, TrainConfig, Trainer};
