//! Active learning on top of fast retraining — the workflow the
//! paper's conclusion points at ("making it one step toward online
//! training").
//!
//! The standard NNMD active-learning loop (as in DP-GEN) is
//! query-by-committee: train a small **ensemble** of Deep Potentials
//! that differ only in their weight initialization; drive MD with one
//! of them; for every visited configuration measure the ensemble's
//! *maximum force deviation* — high deviation means the models
//! extrapolate and the configuration should be labelled (by the
//! ab-initio oracle) and added to the training set. Minutes-scale FEKF
//! retraining is what makes each cycle of this loop cheap.
//!
//! * [`Ensemble`] — k models, shared data, different seeds,
//! * [`Ensemble::force_deviation`] — the committee disagreement score,
//! * [`select_frames`] — pick the most informative frames of a pool,
//! * [`ActiveLoop`] — MD-explore → select → label → retrain cycles.

use crate::trainer::{TrainConfig, Trainer};
use deepmd_core::model::DeepPotModel;
use deepmd_core::nnmd::DeepPotential;
use dp_data::dataset::{Dataset, Snapshot};
use dp_mdsim::md::{MdConfig, MdRunner};
use dp_mdsim::potential::Potential;
use dp_mdsim::state::State;
use dp_mdsim::Vec3;
use dp_optim::fekf::{Fekf, FekfConfig};
use rand::Rng;

/// A committee of Deep Potentials differing only by init seed.
pub struct Ensemble {
    models: Vec<DeepPotModel>,
}

impl Ensemble {
    /// Train-ready ensemble: `k` clones of a base configuration with
    /// distinct seeds (weights re-drawn per member).
    pub fn new(base: &DeepPotModel, train: &Dataset, k: usize) -> Self {
        assert!(k >= 2, "a committee needs at least two members");
        let models = (0..k)
            .map(|i| {
                let mut cfg = base.cfg.clone();
                cfg.seed = base.cfg.seed.wrapping_add(1 + i as u64);
                DeepPotModel::new(cfg, train)
            })
            .collect();
        Ensemble { models }
    }

    /// Committee size.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True if the committee is empty (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Borrow the members.
    pub fn models(&self) -> &[DeepPotModel] {
        &self.models
    }

    /// Train every member on `train` with FEKF (identical protocol,
    /// different initializations).
    pub fn train(&mut self, train: &Dataset, cfg: TrainConfig, fekf: FekfConfig) {
        for model in &mut self.models {
            let mut opt = Fekf::new(&model.layer_sizes(), cfg.batch_size, fekf);
            let _ = Trainer::new(cfg).train_fekf(model, &mut opt, train, None);
        }
    }

    /// Maximum over atoms of the standard deviation of the committee's
    /// force predictions — the canonical DP-GEN selection score.
    pub fn force_deviation(&self, frame: &Snapshot) -> f64 {
        let predictions: Vec<Vec<Vec3>> =
            self.models.iter().map(|m| m.predict(frame).forces).collect();
        let n_atoms = frame.types.len();
        let k = self.models.len() as f64;
        let mut worst = 0.0f64;
        for i in 0..n_atoms {
            // Mean force on atom i.
            let mean = predictions
                .iter()
                .fold(Vec3::ZERO, |acc, p| acc + p[i])
                .scaled(1.0 / k);
            let var = predictions
                .iter()
                .map(|p| (p[i] - mean).norm2())
                .sum::<f64>()
                / k;
            worst = worst.max(var.sqrt());
        }
        worst
    }
}

/// Rank `pool` by committee force deviation and return the indices of
/// the `n_select` most uncertain frames (descending deviation).
pub fn select_frames(ensemble: &Ensemble, pool: &[Snapshot], n_select: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = pool
        .iter()
        .enumerate()
        .map(|(i, f)| (i, ensemble.force_deviation(f)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    scored.into_iter().take(n_select).map(|(i, _)| i).collect()
}

/// One active-learning cycle report.
#[derive(Clone, Debug)]
pub struct CycleReport {
    /// Cycle index.
    pub cycle: usize,
    /// Frames explored by model-driven MD.
    pub explored: usize,
    /// Frames selected for labelling.
    pub selected: usize,
    /// Mean committee deviation over the exploration pool, before
    /// retraining.
    pub mean_deviation: f64,
    /// Training-set size after the cycle.
    pub train_size: usize,
}

/// The explore → select → label → retrain loop.
pub struct ActiveLoop<'a> {
    /// The labelling oracle (stands in for DFT).
    pub oracle: &'a dyn Potential,
    /// MD exploration settings (temperature, stride, …).
    pub md: MdConfig,
    /// Frames to explore per cycle.
    pub explore_frames: usize,
    /// Frames to select and label per cycle.
    pub select_per_cycle: usize,
    /// Retraining protocol.
    pub train_cfg: TrainConfig,
    /// FEKF settings for retraining.
    pub fekf: FekfConfig,
}

impl ActiveLoop<'_> {
    /// Run `cycles` rounds: explore with member 0 of the committee,
    /// select by committee disagreement, label with the oracle, extend
    /// `train`, retrain every member.
    pub fn run(
        &self,
        ensemble: &mut Ensemble,
        start: &State,
        train: &mut Dataset,
        cycles: usize,
        rng: &mut impl Rng,
    ) -> Vec<CycleReport> {
        let mut reports = Vec::with_capacity(cycles);
        for cycle in 0..cycles {
            // Explore with the current best guess of the physics.
            let driver = DeepPotential::new(ensemble.models()[0].clone());
            let runner = MdRunner::new(&driver);
            let explored = runner.sample(start.clone(), &self.md, self.explore_frames, rng);
            let mean_dev = explored
                .iter()
                .map(|f| ensemble.force_deviation(f))
                .sum::<f64>()
                / explored.len().max(1) as f64;
            // Select the most uncertain configurations…
            let picks = select_frames(ensemble, &explored, self.select_per_cycle);
            // …and label them with the oracle (positions are kept; the
            // energies/forces are replaced by ground truth).
            for &i in &picks {
                let mut frame = explored[i].clone();
                let mut state = start.clone();
                state.pos = frame.pos.clone();
                let (e, f) = dp_mdsim::integrate::evaluate(self.oracle, &state);
                frame.energy = e;
                frame.forces = f;
                train.push(frame);
            }
            ensemble.train(train, self.train_cfg, self.fekf);
            reports.push(CycleReport {
                cycle,
                explored: explored.len(),
                selected: picks.len(),
                mean_deviation: mean_dev,
                train_size: train.len(),
            });
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipes::{setup, ModelScale};
    use dp_data::generate::GenScale;
    use dp_mdsim::systems::PaperSystem;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn tiny() -> (crate::recipes::ExperimentSetup, GenScale) {
        let scale = GenScale { frames_per_temperature: 8, equilibration: 20, stride: 2 };
        (setup(PaperSystem::Al, &scale, ModelScale::Small, 31), scale)
    }

    #[test]
    fn deviation_is_zero_for_identical_committee() {
        let (s, _) = tiny();
        let ensemble = Ensemble {
            models: vec![s.model.clone(), s.model.clone()],
        };
        let dev = ensemble.force_deviation(&s.train.frames[0]);
        assert!(dev < 1e-12, "identical members must agree: {dev}");
    }

    #[test]
    fn deviation_is_positive_for_distinct_seeds() {
        let (s, _) = tiny();
        let ensemble = Ensemble::new(&s.model, &s.train, 2);
        let dev = ensemble.force_deviation(&s.train.frames[0]);
        assert!(dev > 1e-6, "differently-seeded members must disagree: {dev}");
    }

    #[test]
    fn select_frames_ranks_by_deviation() {
        let (s, _) = tiny();
        let ensemble = Ensemble::new(&s.model, &s.train, 2);
        let pool: Vec<_> = s.train.frames[..6].to_vec();
        let picks = select_frames(&ensemble, &pool, 3);
        assert_eq!(picks.len(), 3);
        // The picks must be the top-3 by deviation.
        let mut devs: Vec<(usize, f64)> = pool
            .iter()
            .enumerate()
            .map(|(i, f)| (i, ensemble.force_deviation(f)))
            .collect();
        devs.sort_by(|a, b| b.1.total_cmp(&a.1));
        let expected: Vec<usize> = devs[..3].iter().map(|(i, _)| *i).collect();
        assert_eq!(picks, expected);
    }

    #[test]
    fn trained_committee_disagrees_more_off_data_than_on_data() {
        // The property active learning relies on: after training, the
        // committee agrees on configurations like the training data and
        // disagrees on extrapolated (strongly perturbed) ones.
        let (s, _) = tiny();
        let mut ensemble = Ensemble::new(&s.model, &s.train, 2);
        ensemble.train(
            &s.train,
            TrainConfig { batch_size: 4, max_epochs: 4, eval_frames: 8, ..Default::default() },
            FekfConfig::default(),
        );
        let on_data: f64 = s.train.frames[..4]
            .iter()
            .map(|f| ensemble.force_deviation(f))
            .sum::<f64>()
            / 4.0;
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let off_data: f64 = s.train.frames[..4]
            .iter()
            .map(|f| {
                let mut distorted = f.clone();
                for p in &mut distorted.pos {
                    for c in &mut p.0 {
                        *c += rng.gen_range(-0.35..0.35);
                    }
                }
                ensemble.force_deviation(&distorted)
            })
            .sum::<f64>()
            / 4.0;
        assert!(
            off_data > on_data,
            "extrapolation must raise disagreement: on {on_data} vs off {off_data}"
        );
    }

    #[test]
    fn active_cycle_grows_the_training_set_and_reports() {
        let (mut s, _) = tiny();
        let preset = PaperSystem::Al.preset();
        let (state, oracle) = preset.instantiate();
        let mut ensemble = Ensemble::new(&s.model, &s.train, 2);
        let looper = ActiveLoop {
            oracle: oracle.as_ref(),
            md: MdConfig {
                dt: 1.0,
                temperature: 300.0,
                friction: 0.1,
                equilibration: 10,
                stride: 2,
            },
            explore_frames: 4,
            select_per_cycle: 2,
            train_cfg: TrainConfig {
                batch_size: 4,
                max_epochs: 1,
                eval_frames: 8,
                ..Default::default()
            },
            fekf: FekfConfig::default(),
        };
        let n0 = s.train.len();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let reports = looper.run(&mut ensemble, &state, &mut s.train, 2, &mut rng);
        assert_eq!(reports.len(), 2);
        assert_eq!(s.train.len(), n0 + 4);
        assert!(reports.iter().all(|r| r.mean_deviation.is_finite()));
        assert_eq!(reports[1].train_size, n0 + 4);
    }
}
