//! Training checkpoints: crash-safe snapshots of everything a run
//! needs to resume **bit-for-bit** — model weights, the full optimizer
//! state (Adam moments or the EKF `P` blocks and λ), and the sampler
//! cursor (epoch, batches consumed, RNG stream position at the start
//! of the epoch).
//!
//! Layout (little-endian, CRC-32 trailer over everything before it):
//!
//! ```text
//! magic "DPCK" | version u32 | epoch u64 | batches_done u64 |
//! iterations u64 | rng word_pos 2×u64 | rollbacks u32 |
//! params f64 vec | opt tag u8 | opt blob bytes |
//! best flag u8 [ best_eval f64 | best_params f64 vec ] | crc32
//! ```
//!
//! Writes are atomic (temporary sibling + rename), so a crash during a
//! checkpoint leaves the previous one intact; loads verify the CRC
//! before decoding and validate dimensions against the live run, so a
//! torn or mismatched file is a typed error — never a poisoned resume.

use dp_tensor::wire::{crc32, Reader, Writer};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"DPCK";
const VERSION: u32 = 1;

/// Optimizer family stored in a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptKind {
    /// FEKF (KF core + batch envelope).
    Fekf,
    /// Adam (moment vectors + step counter).
    Adam,
}

impl OptKind {
    fn tag(self) -> u8 {
        match self {
            OptKind::Fekf => 0,
            OptKind::Adam => 1,
        }
    }
    fn from_tag(t: u8) -> Result<Self, String> {
        match t {
            0 => Ok(OptKind::Fekf),
            1 => Ok(OptKind::Adam),
            _ => Err(format!("unknown optimizer tag {t}")),
        }
    }
}

/// A resumable training snapshot.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Epoch in progress when the snapshot was taken (1-based).
    pub epoch: usize,
    /// Batches already consumed within that epoch.
    pub batches_done: usize,
    /// Weight-update iterations completed.
    pub iterations: u64,
    /// RNG stream position at the *start* of `epoch` — replaying the
    /// epoch's shuffle from here reproduces the batch order exactly.
    pub word_pos: u128,
    /// Divergence rollbacks consumed so far (the retry budget persists
    /// across resume).
    pub rollbacks: u32,
    /// Flat model parameters.
    pub params: Vec<f64>,
    /// Which optimizer the blob belongs to.
    pub opt_kind: OptKind,
    /// Opaque optimizer state (`state_to_bytes` of the optimizer).
    pub opt_bytes: Vec<u8>,
    /// Best evaluation seen so far and the parameters that achieved it
    /// (for `RobustConfig::restore_best`).
    pub best: Option<(f64, Vec<f64>)>,
}

fn bad(m: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, m.into())
}

impl Checkpoint {
    /// Serialize with the CRC trailer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(MAGIC);
        w.u32(VERSION);
        w.u64(self.epoch as u64);
        w.u64(self.batches_done as u64);
        w.u64(self.iterations);
        w.u64(self.word_pos as u64);
        w.u64((self.word_pos >> 64) as u64);
        w.u32(self.rollbacks);
        w.f64_vec(&self.params);
        w.u8(self.opt_kind.tag());
        w.bytes(&self.opt_bytes);
        match &self.best {
            None => w.u8(0),
            Some((eval, params)) => {
                w.u8(1);
                w.f64(*eval);
                w.f64_vec(params);
            }
        }
        w.into_bytes_with_crc()
    }

    /// Decode, verifying the CRC first.
    pub fn from_bytes(buf: &[u8]) -> io::Result<Checkpoint> {
        let mut r = Reader::new_verifying_crc(buf).map_err(|e| bad(e.to_string()))?;
        let parse = |r: &mut Reader| -> Result<Checkpoint, String> {
            if r.raw(4).map_err(|e| e.to_string())? != MAGIC {
                return Err("bad checkpoint magic".into());
            }
            let version = r.u32().map_err(|e| e.to_string())?;
            if version != VERSION {
                return Err(format!("unsupported checkpoint version {version}"));
            }
            let epoch = r.u64().map_err(|e| e.to_string())? as usize;
            let batches_done = r.u64().map_err(|e| e.to_string())? as usize;
            let iterations = r.u64().map_err(|e| e.to_string())?;
            let lo = r.u64().map_err(|e| e.to_string())? as u128;
            let hi = r.u64().map_err(|e| e.to_string())? as u128;
            let rollbacks = r.u32().map_err(|e| e.to_string())?;
            let params = r.f64_vec().map_err(|e| e.to_string())?;
            if params.iter().any(|v| !v.is_finite()) {
                return Err("non-finite parameter in checkpoint".into());
            }
            let opt_kind = OptKind::from_tag(r.u8().map_err(|e| e.to_string())?)?;
            let opt_bytes = r.bytes().map_err(|e| e.to_string())?.to_vec();
            let best = match r.u8().map_err(|e| e.to_string())? {
                0 => None,
                1 => {
                    let eval = r.f64().map_err(|e| e.to_string())?;
                    let bp = r.f64_vec().map_err(|e| e.to_string())?;
                    if !eval.is_finite() || bp.iter().any(|v| !v.is_finite()) {
                        return Err("non-finite best state in checkpoint".into());
                    }
                    Some((eval, bp))
                }
                t => return Err(format!("bad best-state flag {t}")),
            };
            r.expect_end().map_err(|e| e.to_string())?;
            Ok(Checkpoint {
                epoch,
                batches_done,
                iterations,
                word_pos: lo | (hi << 64),
                rollbacks,
                params,
                opt_kind,
                opt_bytes,
                best,
            })
        };
        parse(&mut r).map_err(bad)
    }

    /// Write crash-safely: temporary sibling + rename, so readers see
    /// either the previous checkpoint or this one, never a torn file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = Path::new(&tmp);
        fs::write(tmp, self.to_bytes())?;
        fs::rename(tmp, path)
    }

    /// Read and verify a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Checkpoint> {
        Checkpoint::from_bytes(&fs::read(path)?)
    }
}

/// The canonical checkpoint filename inside a checkpoint directory.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("train.dpck")
}

/// Load the checkpoint from `dir` if one exists. A missing file is
/// `Ok(None)` (fresh start); an unreadable one is an error — silently
/// restarting from scratch would mask corruption.
pub fn load_latest(dir: &Path) -> io::Result<Option<Checkpoint>> {
    let path = checkpoint_path(dir);
    match fs::read(&path) {
        Ok(buf) => Checkpoint::from_bytes(&buf).map(Some),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Quick integrity probe used by tests and tooling: does the buffer
/// carry a valid CRC trailer?
pub fn verify_bytes(buf: &[u8]) -> bool {
    buf.len() >= 4 && {
        let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
        stored == crc32(&buf[..buf.len() - 4])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            epoch: 3,
            batches_done: 7,
            iterations: 41,
            word_pos: (5u128 << 64) | 123,
            rollbacks: 2,
            params: vec![1.5, -2.25, 0.0625],
            opt_kind: OptKind::Fekf,
            opt_bytes: vec![9, 8, 7, 6],
            best: Some((0.125, vec![1.0, 2.0, 3.0])),
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let c = sample();
        let back = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.epoch, c.epoch);
        assert_eq!(back.batches_done, c.batches_done);
        assert_eq!(back.iterations, c.iterations);
        assert_eq!(back.word_pos, c.word_pos);
        assert_eq!(back.rollbacks, c.rollbacks);
        assert_eq!(back.params, c.params);
        assert_eq!(back.opt_kind, c.opt_kind);
        assert_eq!(back.opt_bytes, c.opt_bytes);
        assert_eq!(back.best, c.best);
    }

    #[test]
    fn bit_rot_and_truncation_are_rejected() {
        let bytes = sample().to_bytes();
        assert!(verify_bytes(&bytes));
        let mut flipped = bytes.clone();
        flipped[10] ^= 0x40;
        assert!(!verify_bytes(&flipped));
        assert!(Checkpoint::from_bytes(&flipped).is_err());
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 9]).is_err());
        assert!(Checkpoint::from_bytes(b"junk").is_err());
    }

    #[test]
    fn non_finite_params_are_rejected() {
        let mut c = sample();
        c.params[1] = f64::NAN;
        let e = Checkpoint::from_bytes(&c.to_bytes()).unwrap_err();
        assert!(e.to_string().contains("non-finite"), "got: {e}");
    }

    #[test]
    fn file_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join("dpck_test_dir");
        let _ = fs::create_dir_all(&dir);
        assert!(load_latest(&dir).unwrap().is_none());
        let c = sample();
        c.save(checkpoint_path(&dir)).unwrap();
        assert!(!dir.join("train.dpck.tmp").exists());
        let back = load_latest(&dir).unwrap().unwrap();
        assert_eq!(back.params, c.params);
        let _ = fs::remove_dir_all(&dir);
    }
}
