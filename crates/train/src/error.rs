//! Typed failures of the training runtime.
//!
//! The fault-tolerant loops ([`crate::trainer::Trainer::train_fekf_robust`]
//! and the distributed variant) never panic on the training hot path:
//! every runtime failure — divergence past the retry budget, a
//! communication fault the resilient allreduce could not absorb, a
//! checkpoint that cannot be written or read — surfaces as a
//! [`TrainError`] the caller can match on.

use crate::trainer::TrainOutcome;
use dp_parallel::CommError;
use std::fmt;
use std::io;

/// A failure of a training run.
#[derive(Debug)]
pub enum TrainError {
    /// The run kept diverging after exhausting the rollback budget.
    /// Carries the best-effort outcome (the model holds the last
    /// healthy — or best, see `RobustConfig::restore_best` — weights).
    Diverged {
        /// Epoch in which the final, unrecovered divergence occurred.
        epoch: usize,
        /// Rollbacks performed before giving up.
        rollbacks: u32,
        /// Outcome assembled from the last healthy state.
        outcome: Box<TrainOutcome>,
    },
    /// The run was halted by `RobustConfig::halt_after` (the simulated
    /// `kill -9` of the checkpoint/resume tests). State up to the last
    /// checkpoint is on disk; resume with `RobustConfig::resume`.
    Halted {
        /// Iterations completed when the halt fired.
        iterations: u64,
    },
    /// A communication fault the resilient allreduce could not absorb
    /// (e.g. every rank dead, or retries exhausted on a lossy link).
    Comm {
        /// The underlying communication error.
        source: CommError,
        /// Epoch in which the fault occurred.
        epoch: usize,
    },
    /// Checkpoint I/O failed.
    Io(io::Error),
    /// A checkpoint file was unreadable or inconsistent with the run.
    Checkpoint(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged { epoch, rollbacks, .. } => write!(
                f,
                "training diverged in epoch {epoch} after {rollbacks} rollback(s); \
                 retry budget exhausted"
            ),
            TrainError::Halted { iterations } => {
                write!(f, "training halted after {iterations} iteration(s)")
            }
            TrainError::Comm { source, epoch } => {
                write!(f, "communication fault in epoch {epoch}: {source}")
            }
            TrainError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            TrainError::Checkpoint(m) => write!(f, "bad checkpoint: {m}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Comm { source, .. } => Some(source),
            TrainError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TrainError {
    fn from(e: io::Error) -> Self {
        TrainError::Io(e)
    }
}
