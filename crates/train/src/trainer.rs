//! Training loops for Adam, RLEKF and FEKF (single- and multi-device).
//!
//! Per-iteration structure of the EKF loops (§4 "Model parameters"):
//! one weight update with the total energy, then `force_updates` (4 by
//! default) updates with disjoint atomic-force groups. FEKF reduces the
//! signed gradients and absolute errors over the whole minibatch before
//! each update (the funnel dataflow of §3.1); RLEKF performs the same
//! sequence per individual sample.
//!
//! Implementation note: the four force-group updates of one iteration
//! share a single fresh forward pass (taken after the energy update)
//! instead of re-running the network between groups — the groups are
//! disjoint, and this matches the batched reference implementation's
//! cost model while keeping the sequential `P` updates.

use crate::metrics::{timed, EpochRecord, PhaseTimes, TrainHistory};
use crate::targets::{energy_target_with, force_targets_with, Backend};
use deepmd_core::loss::{self, LossWeights, Metrics};
use deepmd_core::model::DeepPotModel;
use dp_data::batch::BatchSampler;
use dp_data::dataset::Dataset;
use dp_optim::adam::Adam;
use dp_optim::fekf::Fekf;
use dp_optim::rlekf::Rlekf;
use dp_parallel::DeviceGroup;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::time::Instant;

/// Training-loop configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Minibatch size.
    pub batch_size: usize,
    /// Hard epoch cap.
    pub max_epochs: usize,
    /// Stop when the combined train RMSE (energy + force) reaches this.
    pub target: Option<f64>,
    /// Frames used for the per-epoch train evaluation.
    pub eval_frames: usize,
    /// Force-group updates per iteration (paper: 4).
    pub force_updates: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Derivative backend for the EKF loops (Figure 7 baseline switch).
    pub backend: Backend,
    /// Check the convergence target every N iterations (0 = only at
    /// epoch boundaries). Mid-epoch checks give wall-time measurements
    /// sub-epoch resolution for the time-to-accuracy experiments.
    pub eval_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 32,
            max_epochs: 20,
            target: None,
            eval_frames: 64,
            force_updates: 4,
            seed: 7,
            backend: Backend::Manual,
            eval_every: 0,
        }
    }
}

/// Result of a training run.
#[derive(Clone, Debug)]
pub struct TrainOutcome {
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Weight-update iterations performed.
    pub iterations: u64,
    /// Whether the target was reached.
    pub converged: bool,
    /// Total wall-clock seconds.
    pub wall_s: f64,
    /// Final metrics on the training set.
    pub final_train: Metrics,
    /// Final metrics on the test set, when one was provided.
    pub final_test: Option<Metrics>,
    /// Per-epoch history.
    pub history: TrainHistory,
    /// Phase decomposition (Figure 7c).
    pub phases: PhaseTimes,
    /// Ring-allreduce bytes sent by the busiest rank (distributed runs).
    pub comm_bytes_per_rank: usize,
}

/// The training driver.
#[derive(Clone, Copy, Debug)]
pub struct Trainer {
    /// Loop configuration.
    pub cfg: TrainConfig,
}

struct LoopState {
    start: Instant,
    phases: PhaseTimes,
    iterations: u64,
    history: TrainHistory,
    comm_bytes: usize,
}

impl LoopState {
    fn new() -> Self {
        LoopState {
            start: Instant::now(),
            phases: PhaseTimes::default(),
            iterations: 0,
            history: TrainHistory::default(),
            comm_bytes: 0,
        }
    }
}

impl Trainer {
    /// Create a trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    fn epoch_end(
        &self,
        model: &DeepPotModel,
        train: &Dataset,
        state: &mut LoopState,
        epoch: usize,
    ) -> bool {
        let m = loss::evaluate(model, train, self.cfg.eval_frames);
        state.history.epochs.push(EpochRecord {
            epoch,
            train: m,
            wall_s: state.start.elapsed().as_secs_f64(),
        });
        match self.cfg.target {
            Some(t) => m.combined() <= t,
            None => false,
        }
    }

    /// Mid-epoch convergence probe (when `eval_every` is set).
    fn mid_epoch_converged(
        &self,
        model: &DeepPotModel,
        train: &Dataset,
        state: &mut LoopState,
    ) -> bool {
        if self.cfg.eval_every == 0 || state.iterations % self.cfg.eval_every as u64 != 0 {
            return false;
        }
        let Some(target) = self.cfg.target else { return false };
        let m = loss::evaluate(model, train, self.cfg.eval_frames.min(16).max(1));
        if m.combined() <= target {
            // Confirm on the full eval window before declaring victory.
            let confirm = loss::evaluate(model, train, self.cfg.eval_frames);
            if confirm.combined() <= target {
                state.history.epochs.push(EpochRecord {
                    epoch: state.history.epochs.len() + 1,
                    train: confirm,
                    wall_s: state.start.elapsed().as_secs_f64(),
                });
                return true;
            }
        }
        false
    }

    fn outcome(
        &self,
        model: &DeepPotModel,
        train: &Dataset,
        test: Option<&Dataset>,
        state: LoopState,
        epochs_run: usize,
        converged: bool,
    ) -> TrainOutcome {
        let final_train = loss::evaluate(model, train, self.cfg.eval_frames.max(64));
        let final_test = test.map(|t| loss::evaluate(model, t, usize::MAX));
        TrainOutcome {
            epochs_run,
            iterations: state.iterations,
            converged,
            wall_s: state.start.elapsed().as_secs_f64(),
            final_train,
            final_test,
            history: state.history,
            phases: state.phases,
            comm_bytes_per_rank: state.comm_bytes,
        }
    }

    /// Train with Adam on the standard DeePMD loss (batch-mean
    /// gradients). The Table 1 / Figure 7(a) baseline.
    pub fn train_adam(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Adam,
        train: &Dataset,
        test: Option<&Dataset>,
    ) -> TrainOutcome {
        let weights = LossWeights::default();
        let sampler = BatchSampler::new(train.len(), self.cfg.batch_size, false);
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut state = LoopState::new();
        let mut converged = false;
        let mut epochs_run = 0;
        for epoch in 1..=self.cfg.max_epochs {
            for batch in sampler.epoch(&mut rng) {
                let grad = timed(&mut state.phases.gradient, || {
                    let (mut gsum, _lsum) = batch
                        .par_iter()
                        .map(|&i| loss::loss_and_grad(model, &train.frames[i], &weights))
                        .map(|(l, g)| (g, l))
                        .reduce(
                            || (vec![0.0; model.n_params()], 0.0),
                            |(mut ga, la), (gb, lb)| {
                                for (a, b) in ga.iter_mut().zip(&gb) {
                                    *a += b;
                                }
                                (ga, la + lb)
                            },
                        );
                    let inv = 1.0 / batch.len() as f64;
                    for g in &mut gsum {
                        *g *= inv;
                    }
                    gsum
                });
                timed(&mut state.phases.optimizer, || {
                    let delta = opt.step(&grad);
                    model.apply_update(&delta);
                });
                state.iterations += 1;
                if self.mid_epoch_converged(model, train, &mut state) {
                    converged = true;
                    break;
                }
            }
            epochs_run = epoch;
            if converged || self.epoch_end(model, train, &mut state, epoch) {
                converged = true;
                break;
            }
        }
        self.outcome(model, train, test, state, epochs_run, converged)
    }

    /// Train with single-sample RLEKF (the \[23\] baseline).
    pub fn train_rlekf(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Rlekf,
        train: &Dataset,
        test: Option<&Dataset>,
    ) -> TrainOutcome {
        let sampler = BatchSampler::new(train.len(), 1, false);
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut state = LoopState::new();
        let mut converged = false;
        let mut epochs_run = 0;
        for epoch in 1..=self.cfg.max_epochs {
            for batch in sampler.epoch(&mut rng) {
                let frame = &train.frames[batch[0]];
                // Energy update.
                let pass = timed(&mut state.phases.forward, || model.forward(frame));
                let et = timed(&mut state.phases.gradient, || {
                    energy_target_with(model, &pass, self.cfg.backend)
                });
                timed(&mut state.phases.optimizer, || {
                    let delta = opt.step_sample(&et.grad, et.abe);
                    model.apply_update(&delta);
                });
                // Force updates from a fresh pass.
                let pass = timed(&mut state.phases.forward, || model.forward(frame));
                let forces = timed(&mut state.phases.forward, || model.forces(&pass));
                let fts = timed(&mut state.phases.gradient, || {
                    force_targets_with(
                        model,
                        &pass,
                        &forces,
                        frame,
                        self.cfg.force_updates,
                        self.cfg.backend,
                    )
                });
                timed(&mut state.phases.optimizer, || {
                    for t in &fts {
                        let delta = opt.step_sample(&t.grad, t.abe);
                        model.apply_update(&delta);
                    }
                });
                state.iterations += 1;
                if self.mid_epoch_converged(model, train, &mut state) {
                    converged = true;
                    break;
                }
            }
            epochs_run = epoch;
            if converged || self.epoch_end(model, train, &mut state, epoch) {
                converged = true;
                break;
            }
        }
        self.outcome(model, train, test, state, epochs_run, converged)
    }

    /// Train with FEKF: early-reduced batch gradients/errors, one KF
    /// update per quantity (the paper's contribution).
    pub fn train_fekf(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Fekf,
        train: &Dataset,
        test: Option<&Dataset>,
    ) -> TrainOutcome {
        let sampler = BatchSampler::new(train.len(), self.cfg.batch_size, false);
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut state = LoopState::new();
        let mut converged = false;
        let mut epochs_run = 0;
        for epoch in 1..=self.cfg.max_epochs {
            for batch in sampler.epoch(&mut rng) {
                self.fekf_iteration(model, opt, train, &batch, &mut state);
                if self.mid_epoch_converged(model, train, &mut state) {
                    converged = true;
                    break;
                }
            }
            epochs_run = epoch;
            if converged || self.epoch_end(model, train, &mut state, epoch) {
                converged = true;
                break;
            }
        }
        self.outcome(model, train, test, state, epochs_run, converged)
    }

    /// One FEKF iteration over `batch` (shared by the single-device and
    /// the test paths).
    fn fekf_iteration(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Fekf,
        train: &Dataset,
        batch: &[usize],
        state: &mut LoopState,
    ) {
        let n_params = model.n_params();
        let inv_bs = 1.0 / batch.len() as f64;
        // Energy phase: forward all samples, reduce signed gradients
        // and absolute errors (the early reduction of §3.1).
        let passes = timed(&mut state.phases.forward, || {
            batch
                .par_iter()
                .map(|&i| model.forward(&train.frames[i]))
                .collect::<Vec<_>>()
        });
        // Early reduction (§3.1, Algorithm 1 line 7): gradients are
        // *summed* over the batch ("Ŷ.sum().backward()"), errors are
        // averaged. The Kalman gain normalizes by gᵀPg, so the summed
        // gradient's √bs-growth is exactly what the √bs weight factor
        // compensates (Eq. 2).
        let (gbar, abe_sum) = timed(&mut state.phases.gradient, || {
            passes
                .par_iter()
                .map(|pass| {
                    let t = energy_target_with(model, pass, self.cfg.backend);
                    (t.grad, t.abe)
                })
                .reduce(
                    || (vec![0.0; n_params], 0.0),
                    |(mut ga, aa), (gb, ab)| {
                        for (x, y) in ga.iter_mut().zip(&gb) {
                            *x += y;
                        }
                        (ga, aa + ab)
                    },
                )
        });
        timed(&mut state.phases.optimizer, || {
            let delta = opt.step(&gbar, abe_sum * inv_bs);
            model.apply_update(&delta);
        });
        // Force phase: fresh passes after the energy update.
        let passes = timed(&mut state.phases.forward, || {
            batch
                .par_iter()
                .map(|&i| {
                    let frame = &train.frames[i];
                    let pass = model.forward(frame);
                    let forces = model.forces(&pass);
                    (i, pass, forces)
                })
                .collect::<Vec<_>>()
        });
        let n_groups = self.cfg.force_updates.max(1);
        let (grads, abes) = timed(&mut state.phases.gradient, || {
            passes
                .par_iter()
                .map(|(i, pass, forces)| {
                    let ts = force_targets_with(
                        model,
                        pass,
                        forces,
                        &train.frames[*i],
                        n_groups,
                        self.cfg.backend,
                    );
                    let grads: Vec<Vec<f64>> = ts.iter().map(|t| t.grad.clone()).collect();
                    let abes: Vec<f64> = ts.iter().map(|t| t.abe).collect();
                    (grads, abes)
                })
                .reduce(
                    || (vec![vec![0.0; n_params]; n_groups], vec![0.0; n_groups]),
                    |(mut ga, mut aa), (gb, ab)| {
                        for (dst, src) in ga.iter_mut().zip(&gb) {
                            for (x, y) in dst.iter_mut().zip(src) {
                                *x += y;
                            }
                        }
                        for (x, y) in aa.iter_mut().zip(&ab) {
                            *x += y;
                        }
                        (ga, aa)
                    },
                )
        });
        timed(&mut state.phases.optimizer, || {
            for (g, &abe) in grads.iter().zip(&abes) {
                let delta = opt.step(g, abe * inv_bs);
                model.apply_update(&delta);
            }
        });
        state.iterations += 1;
    }

    /// Train with the fusiform Naive-EKF (§3.1's
    /// "computing-then-aggregation" dataflow): every sample in the
    /// batch drives its *own* Kalman lane with its own `P` replica; the
    /// per-sample weight increments are averaged. Exists to quantify
    /// the dataflow ablation against FEKF (accuracy vs `bs×` memory).
    pub fn train_naive_ekf(
        &self,
        model: &mut DeepPotModel,
        opt: &mut dp_optim::naive_ekf::NaiveEkf,
        train: &Dataset,
        test: Option<&Dataset>,
    ) -> TrainOutcome {
        assert_eq!(
            opt.batch_size(),
            self.cfg.batch_size,
            "Naive-EKF lane count must match the batch size"
        );
        // drop_last: lanes must stay fully populated.
        let sampler = BatchSampler::new(train.len(), self.cfg.batch_size, true);
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut state = LoopState::new();
        let mut converged = false;
        let mut epochs_run = 0;
        let n_groups = self.cfg.force_updates.max(1);
        for epoch in 1..=self.cfg.max_epochs {
            for batch in sampler.epoch(&mut rng) {
                // Energy update: one gradient per lane.
                let targets: Vec<_> = timed(&mut state.phases.gradient, || {
                    batch
                        .par_iter()
                        .map(|&i| {
                            let pass = model.forward(&train.frames[i]);
                            energy_target_with(model, &pass, self.cfg.backend)
                        })
                        .collect()
                });
                timed(&mut state.phases.optimizer, || {
                    let grads: Vec<Vec<f64>> = targets.iter().map(|t| t.grad.clone()).collect();
                    let abes: Vec<f64> = targets.iter().map(|t| t.abe).collect();
                    let delta = opt.step_batch(&grads, &abes);
                    model.apply_update(&delta);
                });
                // Force updates.
                let per_sample: Vec<_> = timed(&mut state.phases.gradient, || {
                    batch
                        .par_iter()
                        .map(|&i| {
                            let frame = &train.frames[i];
                            let pass = model.forward(frame);
                            let forces = model.forces(&pass);
                            force_targets_with(
                                model,
                                &pass,
                                &forces,
                                frame,
                                n_groups,
                                self.cfg.backend,
                            )
                        })
                        .collect()
                });
                timed(&mut state.phases.optimizer, || {
                    for k in 0..n_groups {
                        let grads: Vec<Vec<f64>> =
                            per_sample.iter().map(|ts| ts[k].grad.clone()).collect();
                        let abes: Vec<f64> = per_sample.iter().map(|ts| ts[k].abe).collect();
                        let delta = opt.step_batch(&grads, &abes);
                        model.apply_update(&delta);
                    }
                });
                state.iterations += 1;
            }
            epochs_run = epoch;
            if self.epoch_end(model, train, &mut state, epoch) {
                converged = true;
                break;
            }
        }
        self.outcome(model, train, test, state, epochs_run, converged)
    }

    /// Data-parallel FEKF over a [`DeviceGroup`]: each device computes
    /// its shard's gradient/error sums; shards are combined with a real
    /// ring allreduce; every device would then apply the identical KF
    /// update (here applied once — the replicas are bit-identical, which
    /// is exactly the §3.3 communication-avoidance property).
    pub fn train_fekf_distributed(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Fekf,
        train: &Dataset,
        test: Option<&Dataset>,
        devices: &DeviceGroup,
    ) -> TrainOutcome {
        let sampler = BatchSampler::new(train.len(), self.cfg.batch_size, false);
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut state = LoopState::new();
        let mut converged = false;
        let mut epochs_run = 0;
        let n_params = model.n_params();
        let n_groups = self.cfg.force_updates.max(1);
        for epoch in 1..=self.cfg.max_epochs {
            for batch in sampler.epoch(&mut rng) {
                let inv_bs = 1.0 / batch.len() as f64;
                // Energy update.
                let red = timed(&mut state.phases.gradient, || {
                    devices.map_reduce(&batch, n_params, |_, shard| {
                        let mut g = vec![0.0; n_params];
                        let mut abe = 0.0;
                        for &i in shard {
                            let pass = model.forward(&train.frames[i]);
                            let t = energy_target_with(model, &pass, Backend::Manual);
                            for (x, y) in g.iter_mut().zip(&t.grad) {
                                *x += y;
                            }
                            abe += t.abe;
                        }
                        (g, abe)
                    })
                });
                state.comm_bytes += red.comm.bytes_sent_per_rank;
                // Gradients stay sum-reduced (Algorithm 1); the ABE is
                // averaged over the batch.
                let gbar = red.vector;
                timed(&mut state.phases.optimizer, || {
                    let delta = opt.step(&gbar, red.scalar * inv_bs);
                    model.apply_update(&delta);
                });
                // Force updates: one sharded pass returning the
                // concatenated group gradients + group ABEs.
                let concat_len = n_groups * n_params + n_groups;
                let red = timed(&mut state.phases.gradient, || {
                    devices.map_reduce(&batch, concat_len, |_, shard| {
                        let mut buf = vec![0.0; concat_len];
                        for &i in shard {
                            let frame = &train.frames[i];
                            let pass = model.forward(frame);
                            let forces = model.forces(&pass);
                            let ts = force_targets_with(
                                model, &pass, &forces, frame, n_groups, Backend::Manual,
                            );
                            for (k, t) in ts.iter().enumerate() {
                                let off = k * n_params;
                                for (x, y) in buf[off..off + n_params].iter_mut().zip(&t.grad)
                                {
                                    *x += y;
                                }
                                buf[n_groups * n_params + k] += t.abe;
                            }
                        }
                        (buf, 0.0)
                    })
                });
                state.comm_bytes += red.comm.bytes_sent_per_rank;
                timed(&mut state.phases.optimizer, || {
                    for k in 0..n_groups {
                        let off = k * n_params;
                        let g = &red.vector[off..off + n_params];
                        let abe = red.vector[n_groups * n_params + k] * inv_bs;
                        // Guard all-padding groups (tiny frames).
                        if g.iter().all(|&v| v == 0.0) {
                            continue;
                        }
                        let delta = opt.step(g, abe);
                        model.apply_update(&delta);
                    }
                });
                state.iterations += 1;
                if self.mid_epoch_converged(model, train, &mut state) {
                    converged = true;
                    break;
                }
            }
            epochs_run = epoch;
            if converged || self.epoch_end(model, train, &mut state, epoch) {
                converged = true;
                break;
            }
        }
        self.outcome(model, train, test, state, epochs_run, converged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmd_core::config::ModelConfig;
    use dp_mdsim::lattice::{fcc, Species};
    use dp_mdsim::potential::lj::LennardJones;
    use dp_mdsim::md::{MdConfig, MdRunner};
    use dp_optim::adam::AdamConfig;
    use dp_optim::fekf::FekfConfig;

    /// Tiny LJ dataset: 8-atom argon-like fcc at 60 K.
    fn tiny_dataset(n_frames: usize, seed: u64) -> Dataset {
        let s = fcc(Species::new("Ar", 39.9), 5.26, [2, 2, 2]);
        let pot = LennardJones::single(0.0104, 3.4, 4.2);
        let runner = MdRunner::new(&pot);
        let cfg = MdConfig {
            dt: 2.0,
            temperature: 60.0,
            friction: 0.05,
            equilibration: 40,
            stride: 4,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let frames = runner.sample(s, &cfg, n_frames, &mut rng);
        let mut ds = Dataset::new("ArLJ", vec!["Ar".into()]);
        for f in frames {
            ds.push(f);
        }
        ds
    }

    fn tiny_model(train: &Dataset) -> DeepPotModel {
        let mut cfg = ModelConfig::small(1, 4.2);
        cfg.rcut_smooth = 2.6;
        DeepPotModel::new(cfg, train)
    }

    fn trainer(bs: usize, epochs: usize) -> Trainer {
        Trainer::new(TrainConfig {
            batch_size: bs,
            max_epochs: epochs,
            target: None,
            eval_frames: 16,
            force_updates: 4,
            seed: 3,
            backend: Backend::Manual,
            eval_every: 0,
        })
    }

    #[test]
    fn fekf_training_reduces_rmse() {
        let ds = tiny_dataset(24, 1);
        let mut model = tiny_model(&ds);
        let initial = loss::evaluate(&model, &ds, 16);
        let mut opt = Fekf::new(&model.layer_sizes(), 4, FekfConfig::default());
        let out = trainer(4, 4).train_fekf(&mut model, &mut opt, &ds, None);
        assert!(out.iterations > 0);
        assert!(
            out.final_train.combined() < 0.5 * initial.combined(),
            "FEKF should cut RMSE at least in half: {} → {}",
            initial.combined(),
            out.final_train.combined()
        );
    }

    #[test]
    fn rlekf_training_reduces_rmse() {
        let ds = tiny_dataset(16, 2);
        let mut model = tiny_model(&ds);
        let initial = loss::evaluate(&model, &ds, 16);
        let mut opt = Rlekf::new(&model.layer_sizes(), 10240, None, true);
        let out = trainer(1, 2).train_rlekf(&mut model, &mut opt, &ds, None);
        assert!(
            out.final_train.combined() < 0.5 * initial.combined(),
            "RLEKF: {} → {}",
            initial.combined(),
            out.final_train.combined()
        );
    }

    #[test]
    fn adam_training_reduces_rmse() {
        let ds = tiny_dataset(24, 3);
        let mut model = tiny_model(&ds);
        let initial = loss::evaluate(&model, &ds, 16);
        let mut opt = Adam::new(model.n_params(), AdamConfig { lr: 5e-3, ..Default::default() });
        let out = trainer(4, 12).train_adam(&mut model, &mut opt, &ds, None);
        assert!(
            out.final_train.combined() < initial.combined(),
            "Adam: {} → {}",
            initial.combined(),
            out.final_train.combined()
        );
    }

    #[test]
    fn fekf_converges_much_faster_than_adam_per_epoch() {
        // The paper's core claim in miniature: with the same epoch
        // budget, FEKF reaches far lower error than Adam.
        let ds = tiny_dataset(24, 4);
        let mut m1 = tiny_model(&ds);
        let mut m2 = m1.clone();
        let mut fekf = Fekf::new(&m1.layer_sizes(), 4, FekfConfig::default());
        let mut adam = Adam::new(m2.n_params(), AdamConfig::default());
        let out_f = trainer(4, 3).train_fekf(&mut m1, &mut fekf, &ds, None);
        let out_a = trainer(4, 3).train_adam(&mut m2, &mut adam, &ds, None);
        assert!(
            out_f.final_train.combined() < out_a.final_train.combined(),
            "FEKF {} should beat Adam {} at equal epochs",
            out_f.final_train.combined(),
            out_a.final_train.combined()
        );
    }

    #[test]
    fn distributed_fekf_matches_single_device_closely() {
        let ds = tiny_dataset(16, 5);
        let mut m1 = tiny_model(&ds);
        let mut m2 = m1.clone();
        let mut o1 = Fekf::new(&m1.layer_sizes(), 4, FekfConfig::default());
        let mut o2 = Fekf::new(&m2.layer_sizes(), 4, FekfConfig::default());
        let t = trainer(4, 2);
        let single = t.train_fekf(&mut m1, &mut o1, &ds, None);
        let devices = DeviceGroup::new(2);
        let multi = t.train_fekf_distributed(&mut m2, &mut o2, &ds, None, &devices);
        assert!(multi.comm_bytes_per_rank > 0, "2 devices must communicate");
        // Same data order (same seed) → near-identical trajectories up
        // to float-reduction ordering.
        let rel = (single.final_train.combined() - multi.final_train.combined()).abs()
            / single.final_train.combined();
        assert!(
            rel < 0.15,
            "single {} vs distributed {}",
            single.final_train.combined(),
            multi.final_train.combined()
        );
    }

    #[test]
    fn naive_ekf_training_reduces_rmse() {
        let ds = tiny_dataset(16, 9);
        let mut model = tiny_model(&ds);
        let initial = loss::evaluate(&model, &ds, 16);
        let mut opt =
            dp_optim::naive_ekf::NaiveEkf::new(&model.layer_sizes(), 10240, 4, None, true);
        let out = trainer(4, 2).train_naive_ekf(&mut model, &mut opt, &ds, None);
        assert!(out.iterations > 0);
        assert!(
            out.final_train.combined() < initial.combined(),
            "Naive-EKF: {} → {}",
            initial.combined(),
            out.final_train.combined()
        );
    }

    #[test]
    fn target_stops_training_early() {
        let ds = tiny_dataset(16, 6);
        let mut model = tiny_model(&ds);
        let mut opt = Fekf::new(&model.layer_sizes(), 4, FekfConfig::default());
        let t = Trainer::new(TrainConfig {
            batch_size: 4,
            max_epochs: 50,
            target: Some(1e9), // trivially met after epoch 1
            eval_frames: 8,
            force_updates: 4,
            seed: 1,
            backend: Backend::Manual,
            eval_every: 0,
        });
        let out = t.train_fekf(&mut model, &mut opt, &ds, None);
        assert!(out.converged);
        assert_eq!(out.epochs_run, 1);
    }

    #[test]
    fn phase_times_are_populated() {
        let ds = tiny_dataset(8, 7);
        let mut model = tiny_model(&ds);
        let mut opt = Fekf::new(&model.layer_sizes(), 4, FekfConfig::default());
        let out = trainer(4, 1).train_fekf(&mut model, &mut opt, &ds, None);
        assert!(out.phases.forward.as_nanos() > 0);
        assert!(out.phases.gradient.as_nanos() > 0);
        assert!(out.phases.optimizer.as_nanos() > 0);
    }
}
