//! Training loops for Adam, RLEKF and FEKF (single- and multi-device).
//!
//! Per-iteration structure of the EKF loops (§4 "Model parameters"):
//! one weight update with the total energy, then `force_updates` (4 by
//! default) updates with disjoint atomic-force groups. FEKF reduces the
//! signed gradients and absolute errors over the whole minibatch before
//! each update (the funnel dataflow of §3.1); RLEKF performs the same
//! sequence per individual sample.
//!
//! Implementation note: the four force-group updates of one iteration
//! share a single fresh forward pass (taken after the energy update)
//! instead of re-running the network between groups — the groups are
//! disjoint, and this matches the batched reference implementation's
//! cost model while keeping the sequential `P` updates.

use crate::checkpoint::{self, Checkpoint, OptKind};
use crate::error::TrainError;
use crate::gradients::GradScratch;
use crate::metrics::{timed, EpochRecord, PhaseTimes, TrainHistory};
use crate::targets::{
    accumulate_energy_target, accumulate_force_targets, energy_target_with, force_targets_with,
    Backend,
};
use deepmd_core::env_cache::{env_cache_enabled_from_env, CacheStats, EnvCache};
use deepmd_core::loss::{self, LossWeights, Metrics};
use deepmd_core::model::DeepPotModel;
use dp_data::batch::BatchSampler;
use dp_data::dataset::Dataset;
use dp_optim::adam::Adam;
use dp_optim::fekf::Fekf;
use dp_optim::rlekf::Rlekf;
use dp_parallel::{CommError, DeviceGroup, FaultPlan};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Training-loop configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Minibatch size.
    pub batch_size: usize,
    /// Hard epoch cap.
    pub max_epochs: usize,
    /// Stop when the combined train RMSE (energy + force) reaches this.
    pub target: Option<f64>,
    /// Frames used for the per-epoch train evaluation.
    pub eval_frames: usize,
    /// Force-group updates per iteration (paper: 4).
    pub force_updates: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Derivative backend for the EKF loops (Figure 7 baseline switch).
    pub backend: Backend,
    /// Check the convergence target every N iterations (0 = only at
    /// epoch boundaries). Mid-epoch checks give wall-time measurements
    /// sub-epoch resolution for the time-to-accuracy experiments.
    pub eval_every: usize,
    /// Reuse neighbour environments across epochs via the geometry-
    /// hashed [`EnvCache`] (bitwise-neutral; defaults to the
    /// `DP_ENV_CACHE` environment switch).
    pub env_cache: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 32,
            max_epochs: 20,
            target: None,
            eval_frames: 64,
            force_updates: 4,
            seed: 7,
            backend: Backend::Manual,
            eval_every: 0,
            env_cache: env_cache_enabled_from_env(),
        }
    }
}

/// Result of a training run.
#[derive(Clone, Debug)]
pub struct TrainOutcome {
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Weight-update iterations performed.
    pub iterations: u64,
    /// Whether the target was reached.
    pub converged: bool,
    /// Total wall-clock seconds.
    pub wall_s: f64,
    /// Final metrics on the training set.
    pub final_train: Metrics,
    /// Final metrics on the test set, when one was provided.
    pub final_test: Option<Metrics>,
    /// Per-epoch history.
    pub history: TrainHistory,
    /// Phase decomposition (Figure 7c).
    pub phases: PhaseTimes,
    /// Ring-allreduce bytes sent by the busiest rank (distributed runs).
    pub comm_bytes_per_rank: usize,
    /// Environment-cache hit/miss counters of the KF training loops
    /// (zero for the loops that do not use the cache).
    pub env_cache: CacheStats,
}

/// The training driver.
#[derive(Clone, Copy, Debug)]
pub struct Trainer {
    /// Loop configuration.
    pub cfg: TrainConfig,
}

struct LoopState {
    start: Instant,
    phases: PhaseTimes,
    iterations: u64,
    history: TrainHistory,
    comm_bytes: usize,
    /// Reusable Δw buffer for the optimizer steps: sized on the first
    /// iteration, then the steady-state KF path stays allocation-free.
    delta: Vec<f64>,
    /// Recycled block-reduction scratch of the frame-parallel gradient
    /// engine (single-device loops).
    scratch: GradScratch,
    /// Combined gradient sums of the last block reduction
    /// (`n_slots × n_params` layout, slot-major).
    gsum: Vec<f64>,
    /// Combined absolute-error sums of the last block reduction.
    gabes: Vec<f64>,
    /// Per-rank recycled scratch for the distributed shard closures
    /// (sized lazily to the device count).
    dist_scratch: Vec<Mutex<GradScratch>>,
    /// Latest environment-cache counters (refreshed every iteration so
    /// every outcome path reports them).
    cache_stats: CacheStats,
}

impl LoopState {
    fn new() -> Self {
        LoopState {
            start: Instant::now(),
            phases: PhaseTimes::default(),
            iterations: 0,
            history: TrainHistory::default(),
            comm_bytes: 0,
            delta: Vec::new(),
            scratch: GradScratch::new(),
            gsum: Vec::new(),
            gabes: Vec::new(),
            dist_scratch: Vec::new(),
            cache_stats: CacheStats::default(),
        }
    }

    /// Detach the reusable Δw buffer, (re)sized to `n_params`. Callers
    /// hand it back via [`LoopState::return_delta`] so the next
    /// iteration reuses the same allocation.
    fn take_delta(&mut self, n_params: usize) -> Vec<f64> {
        let mut d = std::mem::take(&mut self.delta);
        if d.len() != n_params {
            d = vec![0.0; n_params];
        }
        d
    }

    fn return_delta(&mut self, d: Vec<f64>) {
        self.delta = d;
    }
}

impl Trainer {
    /// Create a trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    fn epoch_end(
        &self,
        model: &DeepPotModel,
        train: &Dataset,
        state: &mut LoopState,
        epoch: usize,
    ) -> bool {
        let m = loss::evaluate(model, train, self.cfg.eval_frames);
        state.history.epochs.push(EpochRecord {
            epoch,
            train: m,
            wall_s: state.start.elapsed().as_secs_f64(),
        });
        match self.cfg.target {
            Some(t) => m.combined() <= t,
            None => false,
        }
    }

    /// Mid-epoch convergence probe (when `eval_every` is set).
    fn mid_epoch_converged(
        &self,
        model: &DeepPotModel,
        train: &Dataset,
        state: &mut LoopState,
    ) -> bool {
        if self.cfg.eval_every == 0 || !state.iterations.is_multiple_of(self.cfg.eval_every as u64)
        {
            return false;
        }
        let Some(target) = self.cfg.target else { return false };
        let m = loss::evaluate(model, train, self.cfg.eval_frames.clamp(1, 16));
        if m.combined() <= target {
            // Confirm on the full eval window before declaring victory.
            let confirm = loss::evaluate(model, train, self.cfg.eval_frames);
            if confirm.combined() <= target {
                state.history.epochs.push(EpochRecord {
                    epoch: state.history.epochs.len() + 1,
                    train: confirm,
                    wall_s: state.start.elapsed().as_secs_f64(),
                });
                return true;
            }
        }
        false
    }

    fn outcome(
        &self,
        model: &DeepPotModel,
        train: &Dataset,
        test: Option<&Dataset>,
        state: LoopState,
        epochs_run: usize,
        converged: bool,
    ) -> TrainOutcome {
        let final_train = loss::evaluate(model, train, self.cfg.eval_frames.max(64));
        let final_test = test.map(|t| loss::evaluate(model, t, usize::MAX));
        TrainOutcome {
            epochs_run,
            iterations: state.iterations,
            converged,
            wall_s: state.start.elapsed().as_secs_f64(),
            final_train,
            final_test,
            history: state.history,
            phases: state.phases,
            comm_bytes_per_rank: state.comm_bytes,
            env_cache: state.cache_stats,
        }
    }

    /// Build the environment cache for a dataset of `n_frames`
    /// (disabled per [`TrainConfig::env_cache`] — every lookup then
    /// rebuilds, bitwise identical to the pre-cache behaviour).
    fn new_cache(&self, n_frames: usize) -> EnvCache {
        if self.cfg.env_cache {
            EnvCache::new(n_frames)
        } else {
            EnvCache::disabled()
        }
    }

    /// Train with Adam on the standard DeePMD loss (batch-mean
    /// gradients). The Table 1 / Figure 7(a) baseline.
    pub fn train_adam(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Adam,
        train: &Dataset,
        test: Option<&Dataset>,
    ) -> TrainOutcome {
        let weights = LossWeights::default();
        let sampler = BatchSampler::new(train.len(), self.cfg.batch_size, false);
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut state = LoopState::new();
        let mut converged = false;
        let mut epochs_run = 0;
        for epoch in 1..=self.cfg.max_epochs {
            for batch in sampler.epoch(&mut rng) {
                let grad = timed(&mut state.phases.gradient, || {
                    let (mut gsum, _lsum) = batch
                        .par_iter()
                        .map(|&i| loss::loss_and_grad(model, &train.frames[i], &weights))
                        .map(|(l, g)| (g, l))
                        .reduce(
                            || (vec![0.0; model.n_params()], 0.0),
                            |(mut ga, la), (gb, lb)| {
                                for (a, b) in ga.iter_mut().zip(&gb) {
                                    *a += b;
                                }
                                (ga, la + lb)
                            },
                        );
                    let inv = 1.0 / batch.len() as f64;
                    for g in &mut gsum {
                        *g *= inv;
                    }
                    gsum
                });
                timed(&mut state.phases.optimizer, || {
                    let delta = opt.step(&grad);
                    model.apply_update(&delta);
                });
                state.iterations += 1;
                if self.mid_epoch_converged(model, train, &mut state) {
                    converged = true;
                    break;
                }
            }
            epochs_run = epoch;
            if converged || self.epoch_end(model, train, &mut state, epoch) {
                converged = true;
                break;
            }
        }
        self.outcome(model, train, test, state, epochs_run, converged)
    }

    /// Train with single-sample RLEKF (the \[23\] baseline).
    pub fn train_rlekf(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Rlekf,
        train: &Dataset,
        test: Option<&Dataset>,
    ) -> TrainOutcome {
        let sampler = BatchSampler::new(train.len(), 1, false);
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut state = LoopState::new();
        let cache = self.new_cache(train.len());
        let mut converged = false;
        let mut epochs_run = 0;
        for epoch in 1..=self.cfg.max_epochs {
            for batch in sampler.epoch(&mut rng) {
                let frame = &train.frames[batch[0]];
                // Energy update. RLEKF forwards every sample twice per
                // iteration, so the geometry cache pays off even inside
                // one epoch.
                let pass = timed(&mut state.phases.forward, || {
                    model.forward_with_cache(&cache, batch[0], frame)
                });
                let et = timed(&mut state.phases.gradient, || {
                    energy_target_with(model, &pass, self.cfg.backend)
                });
                timed(&mut state.phases.optimizer, || {
                    let delta = opt.step_sample(&et.grad, et.abe);
                    model.apply_update(&delta);
                });
                // Force updates from a fresh pass.
                let pass = timed(&mut state.phases.forward, || {
                    model.forward_with_cache(&cache, batch[0], frame)
                });
                let forces = timed(&mut state.phases.forward, || model.forces(&pass));
                let fts = timed(&mut state.phases.gradient, || {
                    force_targets_with(
                        model,
                        &pass,
                        &forces,
                        frame,
                        self.cfg.force_updates,
                        self.cfg.backend,
                    )
                });
                timed(&mut state.phases.optimizer, || {
                    for t in &fts {
                        let delta = opt.step_sample(&t.grad, t.abe);
                        model.apply_update(&delta);
                    }
                });
                state.iterations += 1;
                state.cache_stats = cache.stats();
                if self.mid_epoch_converged(model, train, &mut state) {
                    converged = true;
                    break;
                }
            }
            epochs_run = epoch;
            if converged || self.epoch_end(model, train, &mut state, epoch) {
                converged = true;
                break;
            }
        }
        self.outcome(model, train, test, state, epochs_run, converged)
    }

    /// Train with FEKF: early-reduced batch gradients/errors, one KF
    /// update per quantity (the paper's contribution).
    pub fn train_fekf(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Fekf,
        train: &Dataset,
        test: Option<&Dataset>,
    ) -> TrainOutcome {
        let sampler = BatchSampler::new(train.len(), self.cfg.batch_size, false);
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut state = LoopState::new();
        let cache = self.new_cache(train.len());
        let mut converged = false;
        let mut epochs_run = 0;
        for epoch in 1..=self.cfg.max_epochs {
            for batch in sampler.epoch(&mut rng) {
                self.fekf_iteration(model, opt, train, &batch, &cache, &mut state);
                if self.mid_epoch_converged(model, train, &mut state) {
                    converged = true;
                    break;
                }
            }
            epochs_run = epoch;
            if converged || self.epoch_end(model, train, &mut state, epoch) {
                converged = true;
                break;
            }
        }
        self.outcome(model, train, test, state, epochs_run, converged)
    }

    /// One FEKF iteration over `batch` (shared by the single-device and
    /// the robust paths). Returns the batch-mean absolute energy error,
    /// which the divergence guards watch.
    ///
    /// Per-frame forward passes reuse cached neighbour environments
    /// (`cache`); the batch gradient/error sums run through the
    /// fixed-block engine of [`crate::gradients`], so the result is
    /// bitwise independent of `DP_POOL_THREADS` and of whether the
    /// cache is enabled.
    fn fekf_iteration(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Fekf,
        train: &Dataset,
        batch: &[usize],
        cache: &EnvCache,
        state: &mut LoopState,
    ) -> f64 {
        let n_params = model.n_params();
        let inv_bs = 1.0 / batch.len() as f64;
        let backend = self.cfg.backend;
        let mut delta = state.take_delta(n_params);
        // Energy phase: forward all samples, reduce signed gradients
        // and absolute errors (the early reduction of §3.1).
        let passes = timed(&mut state.phases.forward, || {
            batch
                .par_iter()
                .map(|&i| model.forward_with_cache(cache, i, &train.frames[i]))
                .collect::<Vec<_>>()
        });
        // Early reduction (§3.1, Algorithm 1 line 7): gradients are
        // *summed* over the batch ("Ŷ.sum().backward()"), errors are
        // averaged. The Kalman gain normalizes by gᵀPg, so the summed
        // gradient's √bs-growth is exactly what the √bs weight factor
        // compensates (Eq. 2).
        {
            let model = &*model;
            let passes = &passes;
            timed(&mut state.phases.gradient, || {
                state.scratch.block_reduce(
                    passes.len(),
                    1,
                    n_params,
                    &|i, blk| {
                        let abe = accumulate_energy_target(
                            model,
                            &passes[i],
                            backend,
                            &mut blk.grads,
                            &mut blk.acc[..n_params],
                        );
                        blk.abes[0] += abe;
                    },
                    &mut state.gsum,
                    &mut state.gabes,
                )
            });
        }
        let mean_abe = state.gabes[0] * inv_bs;
        timed(&mut state.phases.optimizer, || {
            opt.step_into(&state.gsum, mean_abe, &mut delta);
            model.apply_update(&delta);
        });
        // Force phase: fresh passes after the energy update.
        let passes = timed(&mut state.phases.forward, || {
            batch
                .par_iter()
                .map(|&i| {
                    let frame = &train.frames[i];
                    let pass = model.forward_with_cache(cache, i, frame);
                    let forces = model.forces(&pass);
                    (i, pass, forces)
                })
                .collect::<Vec<_>>()
        });
        let n_groups = self.cfg.force_updates.max(1);
        {
            let model = &*model;
            let passes = &passes;
            timed(&mut state.phases.gradient, || {
                state.scratch.block_reduce(
                    passes.len(),
                    n_groups,
                    n_params,
                    &|bi, blk| {
                        let (i, pass, forces) = &passes[bi];
                        accumulate_force_targets(
                            model,
                            pass,
                            forces,
                            &train.frames[*i],
                            n_groups,
                            backend,
                            &mut blk.grads,
                            &mut blk.coeffs,
                            &mut blk.acc[..n_groups * n_params],
                            &mut blk.abes[..n_groups],
                        );
                    },
                    &mut state.gsum,
                    &mut state.gabes,
                )
            });
        }
        timed(&mut state.phases.optimizer, || {
            for k in 0..n_groups {
                let g = &state.gsum[k * n_params..(k + 1) * n_params];
                opt.step_into(g, state.gabes[k] * inv_bs, &mut delta);
                model.apply_update(&delta);
            }
        });
        state.return_delta(delta);
        state.iterations += 1;
        state.cache_stats = cache.stats();
        mean_abe
    }

    /// Train with the fusiform Naive-EKF (§3.1's
    /// "computing-then-aggregation" dataflow): every sample in the
    /// batch drives its *own* Kalman lane with its own `P` replica; the
    /// per-sample weight increments are averaged. Exists to quantify
    /// the dataflow ablation against FEKF (accuracy vs `bs×` memory).
    pub fn train_naive_ekf(
        &self,
        model: &mut DeepPotModel,
        opt: &mut dp_optim::naive_ekf::NaiveEkf,
        train: &Dataset,
        test: Option<&Dataset>,
    ) -> TrainOutcome {
        assert_eq!(
            opt.batch_size(),
            self.cfg.batch_size,
            "Naive-EKF lane count must match the batch size"
        );
        // drop_last: lanes must stay fully populated.
        let sampler = BatchSampler::new(train.len(), self.cfg.batch_size, true);
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut state = LoopState::new();
        let mut converged = false;
        let mut epochs_run = 0;
        let n_groups = self.cfg.force_updates.max(1);
        for epoch in 1..=self.cfg.max_epochs {
            for batch in sampler.epoch(&mut rng) {
                // Energy update: one gradient per lane.
                let targets: Vec<_> = timed(&mut state.phases.gradient, || {
                    batch
                        .par_iter()
                        .map(|&i| {
                            let pass = model.forward(&train.frames[i]);
                            energy_target_with(model, &pass, self.cfg.backend)
                        })
                        .collect()
                });
                timed(&mut state.phases.optimizer, || {
                    let grads: Vec<Vec<f64>> = targets.iter().map(|t| t.grad.clone()).collect();
                    let abes: Vec<f64> = targets.iter().map(|t| t.abe).collect();
                    let delta = opt.step_batch(&grads, &abes);
                    model.apply_update(&delta);
                });
                // Force updates.
                let per_sample: Vec<_> = timed(&mut state.phases.gradient, || {
                    batch
                        .par_iter()
                        .map(|&i| {
                            let frame = &train.frames[i];
                            let pass = model.forward(frame);
                            let forces = model.forces(&pass);
                            force_targets_with(
                                model,
                                &pass,
                                &forces,
                                frame,
                                n_groups,
                                self.cfg.backend,
                            )
                        })
                        .collect()
                });
                timed(&mut state.phases.optimizer, || {
                    for k in 0..n_groups {
                        let grads: Vec<Vec<f64>> =
                            per_sample.iter().map(|ts| ts[k].grad.clone()).collect();
                        let abes: Vec<f64> = per_sample.iter().map(|ts| ts[k].abe).collect();
                        let delta = opt.step_batch(&grads, &abes);
                        model.apply_update(&delta);
                    }
                });
                state.iterations += 1;
            }
            epochs_run = epoch;
            if self.epoch_end(model, train, &mut state, epoch) {
                converged = true;
                break;
            }
        }
        self.outcome(model, train, test, state, epochs_run, converged)
    }

    /// One data-parallel FEKF iteration: sharded gradient/error sums,
    /// combined with the (possibly fault-injected) resilient ring
    /// allreduce, then the identical KF update every replica would
    /// apply (§3.3). Communication faults the resilient layer cannot
    /// absorb surface as typed errors — the distributed hot path never
    /// panics.
    #[allow(clippy::too_many_arguments)]
    fn fekf_distributed_iteration(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Fekf,
        train: &Dataset,
        batch: &[usize],
        devices: &DeviceGroup,
        plan: &FaultPlan,
        cache: &EnvCache,
        state: &mut LoopState,
    ) -> Result<f64, CommError> {
        let n_params = model.n_params();
        let n_groups = self.cfg.force_updates.max(1);
        let inv_bs = 1.0 / batch.len() as f64;
        let mut delta = state.take_delta(n_params);
        if state.dist_scratch.len() < devices.n_devices() {
            state
                .dist_scratch
                .resize_with(devices.n_devices(), || Mutex::new(GradScratch::new()));
        }
        let dist = &state.dist_scratch;
        // Energy update. Each rank fans its shard's fused
        // forward+gradient work over the block engine (frames within a
        // rank parallelize across `dp-pool`; the per-rank shard sum
        // stays a fixed-order reduction, so the allreduce input — and
        // hence the update — is thread-count independent).
        let model_ref = &*model;
        let red = timed(&mut state.phases.gradient, || {
            devices.map_reduce_faulty(batch, n_params, plan, |rank, shard| {
                let mut sc = dist[rank].lock().unwrap_or_else(|e| e.into_inner());
                let mut g = Vec::new();
                let mut abes = Vec::new();
                sc.block_reduce(
                    shard.len(),
                    1,
                    n_params,
                    &|si, blk| {
                        let i = shard[si];
                        let pass = model_ref.forward_with_cache(cache, i, &train.frames[i]);
                        let abe = accumulate_energy_target(
                            model_ref,
                            &pass,
                            Backend::Manual,
                            &mut blk.grads,
                            &mut blk.acc[..n_params],
                        );
                        blk.abes[0] += abe;
                    },
                    &mut g,
                    &mut abes,
                );
                (g, abes[0])
            })
        })?;
        state.comm_bytes += red.comm.bytes_sent_per_rank;
        // Gradients stay sum-reduced (Algorithm 1); the ABE is
        // averaged over the batch.
        let gbar = red.vector;
        let mean_abe = red.scalar * inv_bs;
        timed(&mut state.phases.optimizer, || {
            opt.step_into(&gbar, mean_abe, &mut delta);
            model.apply_update(&delta);
        });
        // Force updates: one sharded pass returning the
        // concatenated group gradients + group ABEs.
        let concat_len = n_groups * n_params + n_groups;
        let model_ref = &*model;
        let red = timed(&mut state.phases.gradient, || {
            devices.map_reduce_faulty(batch, concat_len, plan, |rank, shard| {
                let mut sc = dist[rank].lock().unwrap_or_else(|e| e.into_inner());
                let mut buf = Vec::new();
                let mut abes = Vec::new();
                sc.block_reduce(
                    shard.len(),
                    n_groups,
                    n_params,
                    &|si, blk| {
                        let i = shard[si];
                        let frame = &train.frames[i];
                        let pass = model_ref.forward_with_cache(cache, i, frame);
                        let forces = model_ref.forces(&pass);
                        accumulate_force_targets(
                            model_ref,
                            &pass,
                            &forces,
                            frame,
                            n_groups,
                            Backend::Manual,
                            &mut blk.grads,
                            &mut blk.coeffs,
                            &mut blk.acc[..n_groups * n_params],
                            &mut blk.abes[..n_groups],
                        );
                    },
                    &mut buf,
                    &mut abes,
                );
                buf.extend_from_slice(&abes);
                (buf, 0.0)
            })
        })?;
        state.comm_bytes += red.comm.bytes_sent_per_rank;
        timed(&mut state.phases.optimizer, || {
            for k in 0..n_groups {
                let off = k * n_params;
                let g = &red.vector[off..off + n_params];
                let abe = red.vector[n_groups * n_params + k] * inv_bs;
                // Guard all-padding groups (tiny frames).
                if g.iter().all(|&v| v == 0.0) {
                    continue;
                }
                opt.step_into(g, abe, &mut delta);
                model.apply_update(&delta);
            }
        });
        state.return_delta(delta);
        state.iterations += 1;
        state.cache_stats = cache.stats();
        Ok(mean_abe)
    }

    /// Data-parallel FEKF over a [`DeviceGroup`]: each device computes
    /// its shard's gradient/error sums; shards are combined with a real
    /// ring allreduce; every device would then apply the identical KF
    /// update (here applied once — the replicas are bit-identical, which
    /// is exactly the §3.3 communication-avoidance property).
    ///
    /// Runs on the fault-tolerant loop with a clean link and the legacy
    /// keep-final-weights semantics; use
    /// [`Trainer::train_fekf_distributed_robust`] for fault injection,
    /// checkpointing and best-state restore.
    pub fn train_fekf_distributed(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Fekf,
        train: &Dataset,
        test: Option<&Dataset>,
        devices: &DeviceGroup,
    ) -> Result<TrainOutcome, TrainError> {
        let robust = RobustConfig { restore_best: false, ..RobustConfig::default() };
        self.train_fekf_distributed_robust(
            model,
            opt,
            train,
            test,
            devices,
            &FaultPlan::none(),
            &robust,
        )
    }

    /// Fault-tolerant single-device FEKF training: periodic
    /// checkpointing, divergence detection with rollback-and-retry, and
    /// bit-exact resume after a crash (see [`RobustConfig`]).
    pub fn train_fekf_robust(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Fekf,
        train: &Dataset,
        test: Option<&Dataset>,
        robust: &RobustConfig,
    ) -> Result<TrainOutcome, TrainError> {
        let cache = self.new_cache(train.len());
        self.robust_loop(model, opt, train, test, robust, |this, model, opt, batch, state| {
            Ok(this.fekf_iteration(model, opt, train, batch, &cache, state))
        })
    }

    /// Fault-tolerant data-parallel FEKF training: the allreduce runs
    /// under the given [`FaultPlan`] (dropped / corrupted messages heal
    /// transparently inside the ring; dead ranks degrade to a
    /// renormalized survivor sum), plus all the [`RobustConfig`]
    /// machinery of the single-device loop.
    #[allow(clippy::too_many_arguments)]
    pub fn train_fekf_distributed_robust(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Fekf,
        train: &Dataset,
        test: Option<&Dataset>,
        devices: &DeviceGroup,
        plan: &FaultPlan,
        robust: &RobustConfig,
    ) -> Result<TrainOutcome, TrainError> {
        let cache = self.new_cache(train.len());
        self.robust_loop(model, opt, train, test, robust, |this, model, opt, batch, state| {
            this.fekf_distributed_iteration(model, opt, train, batch, devices, plan, &cache, state)
        })
    }

    /// The shared fault-tolerant epoch loop. `iterate` performs one
    /// weight-update iteration and returns the batch-mean absolute
    /// energy error (or a communication fault).
    fn robust_loop(
        &self,
        model: &mut DeepPotModel,
        opt: &mut Fekf,
        train: &Dataset,
        test: Option<&Dataset>,
        robust: &RobustConfig,
        mut iterate: impl FnMut(
            &Trainer,
            &mut DeepPotModel,
            &mut Fekf,
            &[usize],
            &mut LoopState,
        ) -> Result<f64, CommError>,
    ) -> Result<TrainOutcome, TrainError> {
        let sampler = BatchSampler::new(train.len(), self.cfg.batch_size, false);
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut state = LoopState::new();
        let mut converged = false;
        let mut epochs_run = 0;
        let mut best: Option<(f64, Vec<f64>)> = None;
        let mut rollbacks = 0u32;
        let mut poisoned = false;
        let mut abe_floor: Option<f64> = None;

        // Cursor: the next batch comes from (epoch, batches_done), with
        // the RNG positioned at the start of `epoch`'s shuffle stream.
        let mut epoch = 1usize;
        let mut batches_done = 0usize;

        if robust.resume {
            let dir = robust.checkpoint_dir.as_deref().ok_or_else(|| {
                TrainError::Checkpoint("resume requested without a checkpoint_dir".into())
            })?;
            if let Some(ck) = checkpoint::load_latest(dir)? {
                restore_snapshot(&ck, model, opt)?;
                rng.set_word_pos(ck.word_pos);
                epoch = ck.epoch.max(1);
                batches_done = ck.batches_done;
                state.iterations = ck.iterations;
                rollbacks = ck.rollbacks;
                best = ck.best.clone();
            }
        }

        // The rollback target: last known-healthy state. Refreshed at
        // every checkpoint and every epoch boundary.
        let mut snap = take_snapshot(
            epoch,
            batches_done,
            state.iterations,
            rng.get_word_pos(),
            rollbacks,
            model,
            opt,
            &best,
        );

        'epochs: while epoch <= self.cfg.max_epochs {
            // Replay this epoch's shuffle from the epoch-start stream
            // position (recorded so rollback/resume reproduce the
            // exact batch order).
            let epoch_word_pos = rng.get_word_pos();
            let batches = sampler.epoch(&mut rng);
            let mut bi = batches_done;
            while bi < batches.len() {
                let abe = match iterate(self, model, opt, &batches[bi], &mut state) {
                    Ok(a) => a,
                    Err(source) => return Err(TrainError::Comm { source, epoch }),
                };
                bi += 1;
                batches_done = bi;

                // Chaos hook: a one-shot single-event upset NaN-poisons
                // one P block (transient fault model — it does not
                // recur after the rollback).
                if let Some((at, block)) = robust.poison_p_at {
                    if !poisoned && state.iterations >= at {
                        poisoned = true;
                        poison_p_block(opt, block);
                    }
                }

                // Divergence guards.
                if robust.check_every > 0
                    && state.iterations.is_multiple_of(robust.check_every as u64)
                {
                    if let Some((reason, bad_block)) =
                        divergence_reason(model, opt, abe, &mut abe_floor, robust)
                    {
                        rollbacks += 1;
                        if rollbacks > robust.max_rollbacks {
                            // Budget exhausted: hand back the last
                            // healthy (or best) state with a typed
                            // error.
                            restore_snapshot(&snap, model, opt)?;
                            state.iterations = snap.iterations;
                            restore_best_params(model, train, self.cfg, &best, robust);
                            let outcome = self.outcome(
                                model,
                                train,
                                test,
                                state,
                                epochs_run.max(epoch.saturating_sub(1)),
                                false,
                            );
                            return Err(TrainError::Diverged {
                                epoch,
                                rollbacks: rollbacks - 1,
                                outcome: Box::new(outcome),
                            });
                        }
                        // Roll back to the last healthy snapshot, then
                        // apply the recovery nudge — reset the
                        // offending P block to p0·I and decay λ — so
                        // the replay takes a tamer trajectory instead
                        // of re-diverging identically.
                        let _ = reason; // diagnostic only
                        restore_snapshot(&snap, model, opt)?;
                        match bad_block {
                            Some(b) => opt.core_mut().reset_block(b, 1.0),
                            None => opt.core_mut().mem.decay(0.98),
                        }
                        epoch = snap.epoch;
                        batches_done = snap.batches_done;
                        state.iterations = snap.iterations;
                        rng.set_word_pos(snap.word_pos);
                        continue 'epochs;
                    }
                }

                // Periodic checkpoint: refresh the rollback target and
                // (when configured) persist it crash-safely.
                if robust.checkpoint_every > 0
                    && state.iterations.is_multiple_of(robust.checkpoint_every as u64)
                {
                    snap = take_snapshot(
                        epoch,
                        batches_done,
                        state.iterations,
                        epoch_word_pos,
                        rollbacks,
                        model,
                        opt,
                        &best,
                    );
                    write_checkpoint(&snap, robust)?;
                }

                // Chaos hook: simulated kill. Everything after the last
                // checkpoint is lost, exactly like a real crash; resume
                // replays the gap deterministically.
                if let Some(h) = robust.halt_after {
                    if state.iterations >= h {
                        return Err(TrainError::Halted { iterations: state.iterations });
                    }
                }

                if self.mid_epoch_converged(model, train, &mut state) {
                    converged = true;
                    break;
                }
            }
            epochs_run = epoch;
            if converged || self.epoch_end(model, train, &mut state, epoch) {
                converged = true;
            }
            if let Some(rec) = state.history.epochs.last() {
                let eval = rec.train.combined();
                if eval.is_finite() && best.as_ref().is_none_or(|(b, _)| eval < *b) {
                    best = Some((eval, model.get_params()));
                }
            }
            // Epoch boundary: new cursor, fresh snapshot (the RNG now
            // sits at the start of the next epoch's stream).
            epoch += 1;
            batches_done = 0;
            snap = take_snapshot(
                epoch,
                batches_done,
                state.iterations,
                rng.get_word_pos(),
                rollbacks,
                model,
                opt,
                &best,
            );
            write_checkpoint(&snap, robust)?;
            if converged {
                break;
            }
        }
        restore_best_params(model, train, self.cfg, &best, robust);
        Ok(self.outcome(model, train, test, state, epochs_run, converged))
    }
}

/// Fault-tolerance policy for the robust training loops.
#[derive(Clone, Debug)]
pub struct RobustConfig {
    /// Snapshot (and persist, when `checkpoint_dir` is set) every N
    /// iterations; 0 = epoch boundaries only.
    pub checkpoint_every: usize,
    /// Where checkpoints are written. `None` keeps them in memory only
    /// (rollback still works; crash recovery does not).
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoint in `checkpoint_dir` if one exists.
    pub resume: bool,
    /// Run the divergence guards every N iterations (0 disables them).
    pub check_every: usize,
    /// Declare divergence when the batch energy error exceeds this
    /// multiple of the best error seen so far.
    pub explode_factor: f64,
    /// Declare divergence when any `P` diagonal entry exceeds this (or
    /// goes non-finite / non-positive).
    pub p_diag_cap: f64,
    /// Rollback budget before giving up with [`TrainError::Diverged`].
    pub max_rollbacks: u32,
    /// On exit, restore the parameters of the best epoch evaluation if
    /// they beat the final ones.
    pub restore_best: bool,
    /// Chaos hook: return [`TrainError::Halted`] once this many
    /// iterations complete (simulates `kill -9` for resume tests).
    pub halt_after: Option<u64>,
    /// Chaos hook: NaN-poison `P` block `.1` after iteration `.0`
    /// (one-shot; exercises detect → rollback → reset → continue).
    pub poison_p_at: Option<(u64, usize)>,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: false,
            check_every: 1,
            explode_factor: 1e4,
            p_diag_cap: 1e12,
            max_rollbacks: 3,
            restore_best: true,
            halt_after: None,
            poison_p_at: None,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn take_snapshot(
    epoch: usize,
    batches_done: usize,
    iterations: u64,
    word_pos: u128,
    rollbacks: u32,
    model: &DeepPotModel,
    opt: &Fekf,
    best: &Option<(f64, Vec<f64>)>,
) -> Checkpoint {
    Checkpoint {
        epoch,
        batches_done,
        iterations,
        word_pos,
        rollbacks,
        params: model.get_params(),
        opt_kind: OptKind::Fekf,
        opt_bytes: opt.state_to_bytes(),
        best: best.clone(),
    }
}

fn restore_snapshot(
    ck: &Checkpoint,
    model: &mut DeepPotModel,
    opt: &mut Fekf,
) -> Result<(), TrainError> {
    if ck.opt_kind != OptKind::Fekf {
        return Err(TrainError::Checkpoint(format!(
            "checkpoint holds {:?} state, expected Fekf",
            ck.opt_kind
        )));
    }
    if ck.params.len() != model.n_params() {
        return Err(TrainError::Checkpoint(format!(
            "checkpoint has {} parameters, model has {}",
            ck.params.len(),
            model.n_params()
        )));
    }
    opt.restore_state(&ck.opt_bytes)
        .map_err(|e| TrainError::Checkpoint(e.to_string()))?;
    model.set_params(&ck.params);
    Ok(())
}

fn write_checkpoint(snap: &Checkpoint, robust: &RobustConfig) -> Result<(), TrainError> {
    if let Some(dir) = &robust.checkpoint_dir {
        fs::create_dir_all(dir)?;
        snap.save(checkpoint::checkpoint_path(dir))?;
    }
    Ok(())
}

/// The per-iteration divergence guards: non-finite or exploding batch
/// error, non-finite parameters, or an unhealthy `P` block. Returns the
/// reason and the offending block (when one is identifiable).
fn divergence_reason(
    model: &DeepPotModel,
    opt: &Fekf,
    abe: f64,
    abe_floor: &mut Option<f64>,
    robust: &RobustConfig,
) -> Option<(String, Option<usize>)> {
    let bad_block = opt.core().first_unhealthy_block(robust.p_diag_cap);
    if !abe.is_finite() {
        return Some((format!("non-finite batch error {abe}"), bad_block));
    }
    if let Some(b) = bad_block {
        return Some((format!("unhealthy P block {b}"), Some(b)));
    }
    if let Some(floor) = *abe_floor {
        if abe > robust.explode_factor * floor.max(f64::MIN_POSITIVE) {
            return Some((
                format!("batch error exploded: {abe} vs floor {floor}"),
                None,
            ));
        }
    }
    *abe_floor = Some(abe_floor.map_or(abe, |f| f.min(abe)));
    if model.get_params().iter().any(|v| !v.is_finite()) {
        return Some(("non-finite model parameter".into(), bad_block));
    }
    None
}

/// One-shot chaos fault: overwrite the first element of `P` block
/// `block` with NaN (a simulated memory upset).
fn poison_p_block(opt: &mut Fekf, block: usize) {
    let core = opt.core_mut();
    let b = block % core.p.n_blocks();
    let mut data = core.p.block(b).as_slice().to_vec();
    data[0] = f64::NAN;
    core.p.set_block_data(b, &data);
}

/// Apply `restore_best`: if a tracked epoch evaluation beat the final
/// state, put those parameters back.
fn restore_best_params(
    model: &mut DeepPotModel,
    train: &Dataset,
    cfg: TrainConfig,
    best: &Option<(f64, Vec<f64>)>,
    robust: &RobustConfig,
) {
    if !robust.restore_best {
        return;
    }
    if let Some((best_eval, best_params)) = best {
        let current = loss::evaluate(model, train, cfg.eval_frames).combined();
        if !current.is_finite() || *best_eval < current {
            model.set_params(best_params);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmd_core::config::ModelConfig;
    use dp_mdsim::lattice::{fcc, Species};
    use dp_mdsim::potential::lj::LennardJones;
    use dp_mdsim::md::{MdConfig, MdRunner};
    use dp_optim::adam::AdamConfig;
    use dp_optim::fekf::FekfConfig;

    /// Tiny LJ dataset: 8-atom argon-like fcc at 60 K.
    fn tiny_dataset(n_frames: usize, seed: u64) -> Dataset {
        let s = fcc(Species::new("Ar", 39.9), 5.26, [2, 2, 2]);
        let pot = LennardJones::single(0.0104, 3.4, 4.2);
        let runner = MdRunner::new(&pot);
        let cfg = MdConfig {
            dt: 2.0,
            temperature: 60.0,
            friction: 0.05,
            equilibration: 40,
            stride: 4,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let frames = runner.sample(s, &cfg, n_frames, &mut rng);
        let mut ds = Dataset::new("ArLJ", vec!["Ar".into()]);
        for f in frames {
            ds.push(f);
        }
        ds
    }

    fn tiny_model(train: &Dataset) -> DeepPotModel {
        let mut cfg = ModelConfig::small(1, 4.2);
        cfg.rcut_smooth = 2.6;
        DeepPotModel::new(cfg, train)
    }

    fn trainer(bs: usize, epochs: usize) -> Trainer {
        Trainer::new(TrainConfig {
            batch_size: bs,
            max_epochs: epochs,
            target: None,
            eval_frames: 16,
            force_updates: 4,
            seed: 3,
            backend: Backend::Manual,
            eval_every: 0,
            env_cache: true,
        })
    }

    #[test]
    fn fekf_training_reduces_rmse() {
        let ds = tiny_dataset(24, 1);
        let mut model = tiny_model(&ds);
        let initial = loss::evaluate(&model, &ds, 16);
        let mut opt = Fekf::new(&model.layer_sizes(), 4, FekfConfig::default());
        let out = trainer(4, 4).train_fekf(&mut model, &mut opt, &ds, None);
        assert!(out.iterations > 0);
        assert!(
            out.final_train.combined() < 0.5 * initial.combined(),
            "FEKF should cut RMSE at least in half: {} → {}",
            initial.combined(),
            out.final_train.combined()
        );
    }

    #[test]
    fn rlekf_training_reduces_rmse() {
        let ds = tiny_dataset(16, 2);
        let mut model = tiny_model(&ds);
        let initial = loss::evaluate(&model, &ds, 16);
        let mut opt = Rlekf::new(&model.layer_sizes(), 10240, None, true);
        let out = trainer(1, 2).train_rlekf(&mut model, &mut opt, &ds, None);
        assert!(
            out.final_train.combined() < 0.5 * initial.combined(),
            "RLEKF: {} → {}",
            initial.combined(),
            out.final_train.combined()
        );
    }

    #[test]
    fn adam_training_reduces_rmse() {
        let ds = tiny_dataset(24, 3);
        let mut model = tiny_model(&ds);
        let initial = loss::evaluate(&model, &ds, 16);
        let mut opt = Adam::new(model.n_params(), AdamConfig { lr: 5e-3, ..Default::default() });
        let out = trainer(4, 12).train_adam(&mut model, &mut opt, &ds, None);
        assert!(
            out.final_train.combined() < initial.combined(),
            "Adam: {} → {}",
            initial.combined(),
            out.final_train.combined()
        );
    }

    #[test]
    fn fekf_converges_much_faster_than_adam_per_epoch() {
        // The paper's core claim in miniature: after ONE epoch of
        // updates, FEKF is already far below Adam (the Kalman gain
        // front-loads convergence — that is what makes minutes-scale
        // training possible). At this toy scale Adam eventually catches
        // up with enough epochs, so the single-epoch comparison is the
        // discriminating one.
        let ds = tiny_dataset(24, 4);
        let mut m1 = tiny_model(&ds);
        let mut m2 = m1.clone();
        let mut fekf = Fekf::new(&m1.layer_sizes(), 4, FekfConfig::default());
        let mut adam = Adam::new(m2.n_params(), AdamConfig::default());
        let out_f = trainer(4, 1).train_fekf(&mut m1, &mut fekf, &ds, None);
        let out_a = trainer(4, 1).train_adam(&mut m2, &mut adam, &ds, None);
        assert!(
            out_f.final_train.combined() < 0.5 * out_a.final_train.combined(),
            "FEKF {} should be far below Adam {} after one epoch",
            out_f.final_train.combined(),
            out_a.final_train.combined()
        );
    }

    #[test]
    fn distributed_fekf_matches_single_device_closely() {
        let ds = tiny_dataset(16, 5);
        let mut m1 = tiny_model(&ds);
        let mut m2 = m1.clone();
        let mut o1 = Fekf::new(&m1.layer_sizes(), 4, FekfConfig::default());
        let mut o2 = Fekf::new(&m2.layer_sizes(), 4, FekfConfig::default());
        let t = trainer(4, 2);
        let single = t.train_fekf(&mut m1, &mut o1, &ds, None);
        let devices = DeviceGroup::new(2);
        let multi = t.train_fekf_distributed(&mut m2, &mut o2, &ds, None, &devices).unwrap();
        assert!(multi.comm_bytes_per_rank > 0, "2 devices must communicate");
        // Same data order (same seed) → near-identical trajectories up
        // to float-reduction ordering.
        let rel = (single.final_train.combined() - multi.final_train.combined()).abs()
            / single.final_train.combined();
        assert!(
            rel < 0.15,
            "single {} vs distributed {}",
            single.final_train.combined(),
            multi.final_train.combined()
        );
    }

    #[test]
    fn naive_ekf_training_reduces_rmse() {
        let ds = tiny_dataset(16, 9);
        let mut model = tiny_model(&ds);
        let initial = loss::evaluate(&model, &ds, 16);
        let mut opt =
            dp_optim::naive_ekf::NaiveEkf::new(&model.layer_sizes(), 10240, 4, None, true);
        let out = trainer(4, 2).train_naive_ekf(&mut model, &mut opt, &ds, None);
        assert!(out.iterations > 0);
        assert!(
            out.final_train.combined() < initial.combined(),
            "Naive-EKF: {} → {}",
            initial.combined(),
            out.final_train.combined()
        );
    }

    #[test]
    fn target_stops_training_early() {
        let ds = tiny_dataset(16, 6);
        let mut model = tiny_model(&ds);
        let mut opt = Fekf::new(&model.layer_sizes(), 4, FekfConfig::default());
        let t = Trainer::new(TrainConfig {
            batch_size: 4,
            max_epochs: 50,
            target: Some(1e9), // trivially met after epoch 1
            eval_frames: 8,
            force_updates: 4,
            seed: 1,
            backend: Backend::Manual,
            eval_every: 0,
            env_cache: true,
        });
        let out = t.train_fekf(&mut model, &mut opt, &ds, None);
        assert!(out.converged);
        assert_eq!(out.epochs_run, 1);
    }

    #[test]
    fn phase_times_are_populated() {
        let ds = tiny_dataset(8, 7);
        let mut model = tiny_model(&ds);
        let mut opt = Fekf::new(&model.layer_sizes(), 4, FekfConfig::default());
        let out = trainer(4, 1).train_fekf(&mut model, &mut opt, &ds, None);
        assert!(out.phases.forward.as_nanos() > 0);
        assert!(out.phases.gradient.as_nanos() > 0);
        assert!(out.phases.optimizer.as_nanos() > 0);
    }

    fn no_chaos() -> RobustConfig {
        RobustConfig { restore_best: false, ..RobustConfig::default() }
    }

    #[test]
    fn robust_loop_matches_plain_fekf_bitwise_when_nothing_fails() {
        // The fault-tolerance machinery must be a no-op on a healthy
        // run: same batches, same updates, bit-identical weights.
        let ds = tiny_dataset(16, 11);
        let mut m1 = tiny_model(&ds);
        let mut m2 = m1.clone();
        let mut o1 = Fekf::new(&m1.layer_sizes(), 4, FekfConfig::default());
        let mut o2 = Fekf::new(&m2.layer_sizes(), 4, FekfConfig::default());
        let t = trainer(4, 2);
        let _ = t.train_fekf(&mut m1, &mut o1, &ds, None);
        let _ = t.train_fekf_robust(&mut m2, &mut o2, &ds, None, &no_chaos()).unwrap();
        let p1 = m1.get_params();
        let p2 = m2.get_params();
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn killed_and_resumed_run_is_bitwise_identical_to_uninterrupted() {
        let ds = tiny_dataset(16, 12);
        let dir = std::env::temp_dir().join("dp_resume_bitwise_test");
        let _ = std::fs::remove_dir_all(&dir);
        let t = trainer(4, 3);

        // Reference: uninterrupted run.
        let mut m_ref = tiny_model(&ds);
        let mut o_ref = Fekf::new(&m_ref.layer_sizes(), 4, FekfConfig::default());
        let _ = t.train_fekf_robust(&mut m_ref, &mut o_ref, &ds, None, &no_chaos()).unwrap();

        // Crashed run: checkpoint every 2 iterations, killed after 5 —
        // mid-epoch, NOT on a checkpoint boundary, so resume must
        // replay the gap from the last checkpoint.
        let mut m = tiny_model(&ds);
        let mut opt = Fekf::new(&m.layer_sizes(), 4, FekfConfig::default());
        let robust = RobustConfig {
            checkpoint_every: 2,
            checkpoint_dir: Some(dir.clone()),
            halt_after: Some(5),
            ..no_chaos()
        };
        match t.train_fekf_robust(&mut m, &mut opt, &ds, None, &robust) {
            Err(TrainError::Halted { iterations }) => assert_eq!(iterations, 5),
            other => panic!("expected Halted, got {other:?}"),
        }

        // Resume in a FRESH process image: new model, new optimizer —
        // everything must come from the checkpoint file.
        let mut m2 = tiny_model(&ds);
        let mut o2 = Fekf::new(&m2.layer_sizes(), 4, FekfConfig::default());
        let robust = RobustConfig {
            checkpoint_every: 2,
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..no_chaos()
        };
        let out = t.train_fekf_robust(&mut m2, &mut o2, &ds, None, &robust).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert!(out.iterations > 5, "resume must continue past the crash point");

        let p_ref = m_ref.get_params();
        let p_res = m2.get_params();
        for (i, (a, b)) in p_ref.iter().zip(&p_res).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "param {i} differs after resume: {a} vs {b}"
            );
        }
    }

    #[test]
    fn injected_p_nan_triggers_rollback_and_training_continues() {
        let ds = tiny_dataset(16, 13);
        let mut m = tiny_model(&ds);
        let initial = loss::evaluate(&m, &ds, 16);
        let mut opt = Fekf::new(&m.layer_sizes(), 4, FekfConfig::default());
        let robust = RobustConfig {
            poison_p_at: Some((3, 0)),
            ..no_chaos()
        };
        let out = trainer(4, 3).train_fekf_robust(&mut m, &mut opt, &ds, None, &robust).unwrap();
        // The run recovered: it completed, the model is finite and the
        // P blocks are healthy again.
        assert!(out.iterations > 3);
        assert!(m.get_params().iter().all(|v| v.is_finite()));
        assert!(opt.core().first_unhealthy_block(1e12).is_none());
        assert!(
            out.final_train.combined() < initial.combined(),
            "training must still improve after the upset: {} → {}",
            initial.combined(),
            out.final_train.combined()
        );
    }

    #[test]
    fn divergence_past_retry_budget_is_a_typed_error_with_best_effort_state() {
        let ds = tiny_dataset(8, 14);
        let mut m = tiny_model(&ds);
        let mut opt = Fekf::new(&m.layer_sizes(), 4, FekfConfig::default());
        // An impossible explosion threshold plus zero retries: the
        // first guard check fails the run immediately.
        let robust = RobustConfig {
            max_rollbacks: 0,
            poison_p_at: Some((1, 0)),
            ..RobustConfig::default()
        };
        match trainer(4, 2).train_fekf_robust(&mut m, &mut opt, &ds, None, &robust) {
            Err(TrainError::Diverged { rollbacks, outcome, .. }) => {
                assert_eq!(rollbacks, 0);
                assert!(!outcome.converged);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
        // The model was rolled back to the last healthy snapshot.
        assert!(m.get_params().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn distributed_fekf_with_drops_and_straggler_matches_clean_run_bitwise() {
        // Acceptance: an 8-rank FEKF run under ≥5% message drops plus a
        // straggler completes to the SAME result — the ack/retransmit
        // protocol makes the lossy allreduce bitwise equal to the clean
        // one, so the RMSE target is reached identically.
        use dp_parallel::Straggler;
        use std::time::Duration;
        let ds = tiny_dataset(16, 15);
        let t = trainer(8, 1);
        let devices = DeviceGroup::new(8);

        let mut m_clean = tiny_model(&ds);
        let mut o_clean = Fekf::new(&m_clean.layer_sizes(), 8, FekfConfig::default());
        let clean = t
            .train_fekf_distributed_robust(
                &mut m_clean,
                &mut o_clean,
                &ds,
                None,
                &devices,
                &FaultPlan::none(),
                &no_chaos(),
            )
            .unwrap();

        let mut m_faulty = tiny_model(&ds);
        let mut o_faulty = Fekf::new(&m_faulty.layer_sizes(), 8, FekfConfig::default());
        let plan = FaultPlan {
            seed: 42,
            drop_prob: 0.08,
            corrupt_prob: 0.02,
            straggler: Some(Straggler { rank: 3, delay: Duration::from_micros(300) }),
            ..FaultPlan::none()
        };
        let faulty = t
            .train_fekf_distributed_robust(
                &mut m_faulty,
                &mut o_faulty,
                &ds,
                None,
                &devices,
                &plan,
                &no_chaos(),
            )
            .unwrap();

        assert!(faulty.comm_bytes_per_rank > 0);
        let pc = m_clean.get_params();
        let pf = m_faulty.get_params();
        for (i, (a, b)) in pc.iter().zip(&pf).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "param {i}: faulty allreduce must heal to the clean result"
            );
        }
        assert_eq!(
            clean.final_train.combined().to_bits(),
            faulty.final_train.combined().to_bits(),
            "same weights → same RMSE"
        );
    }

    #[test]
    fn dead_rank_mid_training_degrades_gracefully() {
        use dp_parallel::DeadRank;
        let ds = tiny_dataset(16, 16);
        let mut m = tiny_model(&ds);
        let initial = loss::evaluate(&m, &ds, 16);
        let mut opt = Fekf::new(&m.layer_sizes(), 4, FekfConfig::default());
        let devices = DeviceGroup::new(4);
        // Rank 2 dies at its first communication step and stays dead
        // for the whole run; the ring re-forms over 3 survivors with a
        // renormalized sum and training carries on.
        let plan = FaultPlan {
            dead: vec![DeadRank { rank: 2, step: 0 }],
            ..FaultPlan::none()
        };
        let out = trainer(4, 2)
            .train_fekf_distributed_robust(
                &mut m,
                &mut opt,
                &ds,
                None,
                &devices,
                &plan,
                &no_chaos(),
            )
            .unwrap();
        assert!(out.iterations > 0);
        assert!(m.get_params().iter().all(|v| v.is_finite()));
        assert!(
            out.final_train.combined() < initial.combined(),
            "degraded run must still learn: {} → {}",
            initial.combined(),
            out.final_train.combined()
        );
    }
}

