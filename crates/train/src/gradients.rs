//! Deterministic frame-parallel batch-gradient reduction.
//!
//! FEKF sums signed per-frame gradients (and averages per-frame
//! absolute errors) over the minibatch before every Kalman update
//! (§3.1 early reduction). This module fans that per-frame work
//! across `dp-pool` under the same determinism contract as the tiled
//! kernels of PR 2:
//!
//! * the batch is split into [`MAX_GRAD_BLOCKS`] fixed blocks whose
//!   boundaries depend only on the item count — never the thread
//!   count — and frames accumulate into their block's scratch in
//!   ascending index order;
//! * blocks combine into the output in ascending block order on the
//!   submitting thread.
//!
//! Floating-point addition is deterministic for a fixed order, so the
//! reduced gradient (hence weights, `P` blocks and DPCK checkpoint
//! bytes) is a pure function of (data, seed, config) at any
//! `DP_POOL_THREADS`.
//!
//! Each block owns a recycled [`BlockScratch`] — model-shaped
//! gradient buffers, flat accumulators, coefficient vectors — so the
//! steady-state iteration performs no gradient-sized allocations. The
//! per-block mutexes are uncontended (each block index is claimed by
//! exactly one pool task); they exist to satisfy `Sync` for the
//! fan-out closure.

use deepmd_core::model::ModelGrads;
use std::sync::Mutex;

/// Upper bound on reduction blocks. More blocks raise the parallelism
/// ceiling but cost one gradient-sized accumulator each; 8 covers the
/// pool widths we sweep (1–8 threads) without hurting 1-thread runs.
pub const MAX_GRAD_BLOCKS: usize = 8;

/// Recycled per-block working memory for the fan-out stage.
#[derive(Default)]
pub struct BlockScratch {
    /// Model-shaped gradient buffer (lazily initialized, then reused).
    pub grads: Option<ModelGrads>,
    /// Force-contraction coefficient buffer (`3 · n_atoms`).
    pub coeffs: Vec<f64>,
    /// Flat gradient accumulators, `n_slots × n_params` used prefix.
    pub acc: Vec<f64>,
    /// Absolute-error accumulators, `n_slots` used prefix.
    pub abes: Vec<f64>,
}

/// Recycled state of the block reduction: per-block scratch plus the
/// combined outputs. One per training loop (plus one per rank in the
/// distributed loop); buffers grow to the largest phase and stay.
#[derive(Default)]
pub struct GradScratch {
    blocks: Vec<Mutex<BlockScratch>>,
}

/// Number of reduction blocks for `n_items` frames: a function of the
/// item count alone (the determinism contract).
fn n_blocks(n_items: usize) -> usize {
    n_items.clamp(1, MAX_GRAD_BLOCKS)
}

/// Half-open index range of block `b` out of `nb`: sizes differ by at
/// most one, earlier blocks take the remainder.
fn block_range(n_items: usize, nb: usize, b: usize) -> (usize, usize) {
    let base = n_items / nb;
    let rem = n_items % nb;
    let lo = b * base + b.min(rem);
    (lo, lo + base + usize::from(b < rem))
}

impl GradScratch {
    /// Fresh scratch (buffers size themselves on first use).
    pub fn new() -> Self {
        GradScratch::default()
    }

    /// Run `per_item(i, block_scratch)` for every `i < n_items` across
    /// the pool and combine the per-block `acc`/`abes` prefixes into
    /// `out` (resized to `n_slots · n_params`) and `out_abes` (resized
    /// to `n_slots`) in ascending block order.
    ///
    /// `per_item` must *add* its frame's contribution into
    /// `scratch.acc[..n_slots * n_params]` / `scratch.abes[..n_slots]`
    /// (both pre-zeroed per call); items within a block run in
    /// ascending index order on one task.
    pub fn block_reduce(
        &mut self,
        n_items: usize,
        n_slots: usize,
        n_params: usize,
        per_item: &(dyn Fn(usize, &mut BlockScratch) + Sync),
        out: &mut Vec<f64>,
        out_abes: &mut Vec<f64>,
    ) {
        let nb = n_blocks(n_items);
        let len = n_slots * n_params;
        if self.blocks.len() < nb {
            self.blocks.resize_with(nb, || Mutex::new(BlockScratch::default()));
        }
        for blk in &self.blocks[..nb] {
            let mut s = blk.lock().unwrap_or_else(|e| e.into_inner());
            if s.acc.len() < len {
                s.acc.resize(len, 0.0);
            }
            s.acc[..len].fill(0.0);
            if s.abes.len() < n_slots {
                s.abes.resize(n_slots, 0.0);
            }
            s.abes[..n_slots].fill(0.0);
        }
        let blocks = &self.blocks[..nb];
        dp_pool::parallel_for(nb, &|b| {
            let mut s = blocks[b].lock().unwrap_or_else(|e| e.into_inner());
            let (lo, hi) = block_range(n_items, nb, b);
            for i in lo..hi {
                per_item(i, &mut s);
            }
        });
        out.resize(len, 0.0);
        out[..len].fill(0.0);
        out_abes.resize(n_slots, 0.0);
        out_abes[..n_slots].fill(0.0);
        for blk in &self.blocks[..nb] {
            let s = blk.lock().unwrap_or_else(|e| e.into_inner());
            for (o, v) in out[..len].iter_mut().zip(&s.acc[..len]) {
                *o += v;
            }
            for (o, v) in out_abes[..n_slots].iter_mut().zip(&s.abes[..n_slots]) {
                *o += v;
            }
        }
        out.truncate(len);
        out_abes.truncate(n_slots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    static POOL_LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn block_ranges_partition_and_balance() {
        for n in [0usize, 1, 3, 7, 8, 9, 16, 33] {
            let nb = n_blocks(n);
            let mut covered = 0;
            let mut prev_end = 0;
            for b in 0..nb {
                let (lo, hi) = block_range(n, nb, b);
                assert_eq!(lo, prev_end, "blocks must tile contiguously");
                assert!(hi - lo <= n / nb + 1);
                covered += hi - lo;
                prev_end = hi;
            }
            assert_eq!(covered, n, "n={n}");
        }
    }

    #[test]
    fn reduce_matches_sequential_sum_at_any_thread_count() {
        let _g = POOL_LOCK.lock().unwrap();
        let n_items = 13;
        let n_slots = 3;
        let n_params = 5;
        // Reference: plain ascending-order sum.
        let contrib = |i: usize, s: usize, p: usize| ((i * 31 + s * 7 + p) as f64 * 0.01).sin();
        let mut want = vec![0.0; n_slots * n_params];
        let mut want_abes = vec![0.0; n_slots];
        for i in 0..n_items {
            for s in 0..n_slots {
                for p in 0..n_params {
                    want[s * n_params + p] += contrib(i, s, p);
                }
                want_abes[s] += (i * n_slots + s) as f64;
            }
        }
        let run = |threads: usize| {
            dp_pool::set_threads(threads);
            let mut scratch = GradScratch::new();
            let mut out = Vec::new();
            let mut abes = Vec::new();
            scratch.block_reduce(
                n_items,
                n_slots,
                n_params,
                &|i, blk| {
                    for s in 0..n_slots {
                        for p in 0..n_params {
                            blk.acc[s * n_params + p] += contrib(i, s, p);
                        }
                        blk.abes[s] += (i * n_slots + s) as f64;
                    }
                },
                &mut out,
                &mut abes,
            );
            (out, abes)
        };
        let (o1, a1) = run(1);
        for &t in &[2usize, 8] {
            let (o, a) = run(t);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&o1), bits(&o), "gradients diverged at {t} threads");
            assert_eq!(bits(&a1), bits(&a), "abes diverged at {t} threads");
        }
        dp_pool::set_threads(1);
        // Tolerance (not bitwise) vs the naive single-sum reference:
        // the block split changes the addition tree.
        for (x, y) in o1.iter().zip(&want) {
            assert!((x - y).abs() < 1e-12);
        }
        for (x, y) in a1.iter().zip(&want_abes) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn buffers_shrink_logically_between_phases() {
        let _g = POOL_LOCK.lock().unwrap();
        dp_pool::set_threads(1);
        let mut scratch = GradScratch::new();
        let mut out = Vec::new();
        let mut abes = Vec::new();
        // Wide phase (4 slots), then narrow phase (1 slot): the narrow
        // output must not see stale wide-phase values.
        scratch.block_reduce(4, 4, 3, &|_, blk| {
            for v in blk.acc[..12].iter_mut() {
                *v += 1.0;
            }
        }, &mut out, &mut abes);
        assert_eq!(out.len(), 12);
        scratch.block_reduce(4, 1, 3, &|i, blk| {
            blk.acc[0] += i as f64;
            blk.abes[0] += 1.0;
        }, &mut out, &mut abes);
        assert_eq!(out.len(), 3);
        assert_eq!(abes, vec![4.0]);
        assert_eq!(out, vec![0.0 + 1.0 + 2.0 + 3.0, 0.0, 0.0]);
    }
}
