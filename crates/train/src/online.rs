//! The online-learning / repetitive-retraining loop of Figure 1.
//!
//! The paper's motivation: "the labeling data cannot cover all chemical
//! space a priori, \[so\] the training procedure is invoked repetitively"
//! — e.g. the same copper system sampled at new temperatures forces a
//! retrain, 20–100 times per NNMD development. Fast training (minutes,
//! not hours) is what makes this loop — and ultimately *online*
//! learning — practical.
//!
//! [`OnlineLoop::run`] simulates exactly that: data shards arrive one
//! at a time (here: one generation temperature per stage), the current
//! model is evaluated on the incoming shard (the "surprise"), then
//! retrained on everything seen so far, warm-starting from the previous
//! weights.

use crate::error::TrainError;
use crate::trainer::{RobustConfig, TrainConfig, Trainer};
use deepmd_core::loss::{self, Metrics};
use deepmd_core::model::DeepPotModel;
use dp_data::dataset::Dataset;
use dp_optim::fekf::{Fekf, FekfConfig};

/// Which serving tiers a stage's publication actually carried, beyond
/// the always-present f64 master. The publish hook returns one of
/// these so the stage report records what the serving side can route
/// to — an online-learning operator reading the report log can tell
/// whether a stage shipped the cheap tiers or fell back to
/// master-only (e.g. compression failed its fit budget).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FidelitySet {
    /// A spline-tabulated [`deepmd_core::compress`]-style model was
    /// published alongside the master.
    pub compressed: bool,
    /// An int-quantized energy-only model was published alongside the
    /// master.
    pub quantized: bool,
}

impl std::fmt::Display for FidelitySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.compressed, self.quantized) {
            (false, false) => write!(f, "master"),
            (true, false) => write!(f, "master+compressed"),
            (false, true) => write!(f, "master+quantized"),
            (true, true) => write!(f, "master+compressed+quantized"),
        }
    }
}

/// Report for one retraining stage.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// Stage index (arrival order).
    pub stage: usize,
    /// Temperature (K) of the arriving shard.
    pub temperature: f64,
    /// Metrics on the incoming shard *before* retraining.
    pub before: Metrics,
    /// Metrics on the incoming shard *after* retraining (for a failed
    /// stage: after the best-effort recovery).
    pub after: Metrics,
    /// Wall-clock seconds of the retrain.
    pub retrain_s: f64,
    /// Training iterations spent.
    pub iterations: u64,
    /// Why the stage's retrain failed, if it did. A failed stage is
    /// recorded and *skipped* — the loop carries the recovered model
    /// into the next stage instead of aborting the whole run.
    pub failure: Option<String>,
    /// Why the stage's *publication* was rejected, if it was (e.g. the
    /// serving registry's `model_io` validation refused the bytes). A
    /// failed publish is record-and-skip exactly like a failed retrain:
    /// the loop keeps training, and serving clients keep the last-good
    /// snapshot.
    pub publish_failure: Option<String>,
    /// Which fidelity tiers the publish hook actually shipped for this
    /// stage (`None` for unpublished stages — failed retrain, rejected
    /// publish, or a [`OnlineLoop::run`] call with no hook).
    pub published_fidelities: Option<FidelitySet>,
}

impl StageReport {
    /// Did this stage's retrain complete?
    pub fn succeeded(&self) -> bool {
        self.failure.is_none()
    }

    /// Did this stage's model reach the serving side (retrain succeeded
    /// *and* the publish hook accepted it)?
    pub fn published(&self) -> bool {
        self.failure.is_none() && self.publish_failure.is_none()
    }
}

/// Online-learning driver: FEKF retraining over arriving shards.
pub struct OnlineLoop {
    /// Training configuration per stage.
    pub cfg: TrainConfig,
    /// FEKF configuration (a fresh optimizer state per stage; the
    /// *model weights* are warm-started).
    pub fekf: FekfConfig,
    /// Fault-tolerance policy for each stage's retrain.
    pub robust: RobustConfig,
}

impl OnlineLoop {
    /// Run the loop: `shards` arrive in order; the model is retrained
    /// after each arrival on the union of everything seen.
    ///
    /// A stage whose retrain exhausts its retry budget is recorded with
    /// [`StageReport::failure`] set and skipped: the model keeps the
    /// best-effort weights the robust loop recovered, and the loop
    /// moves on to the next shard — an online-learning service must
    /// outlive a single bad retrain.
    pub fn run(&self, model: &mut DeepPotModel, shards: &[Dataset]) -> Vec<StageReport> {
        self.run_published(model, shards, &mut |_, _| Ok(FidelitySet::default()))
    }

    /// [`OnlineLoop::run`] with a publication hook: after every stage
    /// whose retrain *succeeded*, `publish` is called with the freshly
    /// retrained weights and the stage report. This is how the loop
    /// feeds a serving registry (`dp-serve`) without this crate
    /// depending on it — the caller's closure typically clones the
    /// model into `ModelRegistry::publish`, hot-swapping what MD
    /// clients see while the next stage retrains. Failed stages are
    /// recorded but never published: clients keep the last good model.
    ///
    /// The hook is fallible: a rejected publication (corrupt bytes, a
    /// registry validation failure) is recorded on the stage report as
    /// [`StageReport::publish_failure`] and *skipped* — the loop keeps
    /// retraining on the same weights, and the serving side stays on
    /// its last-good snapshot. An online-learning service must outlive
    /// a bad publish exactly as it outlives a bad retrain.
    ///
    /// On success the hook returns the [`FidelitySet`] it actually
    /// shipped (master-only vs +compressed/+quantized artifacts); the
    /// loop stamps it into [`StageReport::published_fidelities`] so
    /// the report log records what the serving side can route to.
    pub fn run_published(
        &self,
        model: &mut DeepPotModel,
        shards: &[Dataset],
        publish: &mut dyn FnMut(&DeepPotModel, &StageReport) -> Result<FidelitySet, String>,
    ) -> Vec<StageReport> {
        assert!(!shards.is_empty(), "need at least one shard");
        let mut seen = Dataset::new(&shards[0].name, shards[0].type_names.clone());
        let mut reports = Vec::with_capacity(shards.len());
        // The poison chaos hook is one-shot across the whole loop: it
        // arms each stage until one consumes it (a transient upset hits
        // once, not once per retrain).
        let mut pending_poison = self.robust.poison_p_at;
        for (stage, shard) in shards.iter().enumerate() {
            let before = loss::evaluate(model, shard, self.cfg.eval_frames);
            for f in &shard.frames {
                seen.push(f.clone());
            }
            let mut opt = Fekf::new(&model.layer_sizes(), self.cfg.batch_size, self.fekf);
            let mut robust = self.robust.clone();
            robust.poison_p_at = pending_poison;
            let result = Trainer::new(self.cfg).train_fekf_robust(
                model,
                &mut opt,
                &seen,
                None,
                &robust,
            );
            if let Some((at, _)) = pending_poison {
                let fired = match &result {
                    Ok(out) => out.iterations >= at,
                    // A failed retrain with the hook armed means the
                    // upset fired (or the stage is beyond saving —
                    // either way, don't re-inject).
                    Err(_) => true,
                };
                if fired {
                    pending_poison = None;
                }
            }
            let (out, failure) = match result {
                Ok(out) => (out, None),
                Err(TrainError::Diverged { epoch, rollbacks, outcome }) => {
                    let why = format!(
                        "retrain diverged in epoch {epoch} after {rollbacks} rollback(s)"
                    );
                    (*outcome, Some(why))
                }
                Err(e) => {
                    // No outcome to salvage (checkpoint I/O, comm):
                    // record the failure with zeroed training stats and
                    // carry the current weights forward.
                    let after = loss::evaluate(model, shard, self.cfg.eval_frames);
                    reports.push(StageReport {
                        stage,
                        temperature: shard
                            .frames
                            .first()
                            .map(|f| f.temperature)
                            .unwrap_or(0.0),
                        before,
                        after,
                        retrain_s: 0.0,
                        iterations: 0,
                        failure: Some(e.to_string()),
                        publish_failure: None,
                        published_fidelities: None,
                    });
                    continue;
                }
            };
            let after = loss::evaluate(model, shard, self.cfg.eval_frames);
            reports.push(StageReport {
                stage,
                temperature: shard.frames.first().map(|f| f.temperature).unwrap_or(0.0),
                before,
                after,
                retrain_s: out.wall_s,
                iterations: out.iterations,
                failure,
                publish_failure: None,
                published_fidelities: None,
            });
            let report = reports.last().expect("just pushed");
            if report.succeeded() {
                match publish(model, report) {
                    Ok(set) => {
                        reports.last_mut().expect("just pushed").published_fidelities = Some(set);
                    }
                    Err(why) => {
                        reports.last_mut().expect("just pushed").publish_failure = Some(why);
                    }
                }
            }
        }
        reports
    }
}

/// Split a mixed-temperature dataset into per-temperature shards,
/// ordered by temperature (the arrival order of Figure 1a).
pub fn shards_by_temperature(data: &Dataset) -> Vec<Dataset> {
    let mut temps: Vec<f64> = Vec::new();
    for f in &data.frames {
        if !temps.iter().any(|&t| (t - f.temperature).abs() < 1e-9) {
            temps.push(f.temperature);
        }
    }
    temps.sort_by(|a, b| a.total_cmp(b));
    temps
        .into_iter()
        .map(|t| {
            let mut shard = Dataset::new(&data.name, data.type_names.clone());
            for f in &data.frames {
                if (f.temperature - t).abs() < 1e-9 {
                    shard.push(f.clone());
                }
            }
            shard
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipes::{setup, ModelScale};
    use dp_data::generate::GenScale;
    use dp_mdsim::systems::PaperSystem;

    #[test]
    fn shards_partition_by_temperature_in_order() {
        let scale = GenScale { frames_per_temperature: 4, equilibration: 15, stride: 2 };
        let s = setup(PaperSystem::Al, &scale, ModelScale::Small, 5);
        let shards = shards_by_temperature(&s.train);
        assert_eq!(shards.len(), 4); // Al: 300, 500, 800, 1000 K
        let mut prev = 0.0;
        let mut total = 0;
        for sh in &shards {
            let t = sh.frames[0].temperature;
            assert!(t > prev);
            assert!(sh.frames.iter().all(|f| f.temperature == t));
            prev = t;
            total += sh.len();
        }
        assert_eq!(total, s.train.len());
    }

    #[test]
    fn retraining_improves_each_incoming_shard() {
        let scale = GenScale { frames_per_temperature: 8, equilibration: 20, stride: 2 };
        let mut s = setup(PaperSystem::Al, &scale, ModelScale::Small, 6);
        let shards = shards_by_temperature(&s.train);
        let looper = OnlineLoop {
            cfg: TrainConfig {
                batch_size: 4,
                max_epochs: 2,
                eval_frames: 8,
                ..Default::default()
            },
            fekf: FekfConfig::default(),
            robust: RobustConfig::default(),
        };
        let reports = looper.run(&mut s.model, &shards[..2]);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.succeeded(), "stage {} failed: {:?}", r.stage, r.failure);
            assert!(
                r.after.combined() < r.before.combined(),
                "stage {} at {} K: {} → {}",
                r.stage,
                r.temperature,
                r.before.combined(),
                r.after.combined()
            );
        }
    }

    #[test]
    fn publish_hook_fires_once_per_successful_stage() {
        let scale = GenScale { frames_per_temperature: 8, equilibration: 20, stride: 2 };
        let mut s = setup(PaperSystem::Al, &scale, ModelScale::Small, 6);
        let shards = shards_by_temperature(&s.train);
        let looper = OnlineLoop {
            cfg: TrainConfig {
                batch_size: 4,
                max_epochs: 2,
                eval_frames: 8,
                ..Default::default()
            },
            fekf: FekfConfig::default(),
            robust: RobustConfig::default(),
        };
        let mut published: Vec<(usize, Vec<f64>)> = Vec::new();
        let reports = looper.run_published(&mut s.model, &shards[..2], &mut |m, r| {
            published.push((r.stage, m.get_params()));
            Ok(FidelitySet { compressed: true, quantized: false })
        });
        let ok = reports.iter().filter(|r| r.succeeded()).count();
        assert!(reports.iter().all(|r| r.published() == r.succeeded()));
        // The hook's fidelity set is stamped on every published stage.
        for r in reports.iter().filter(|r| r.published()) {
            let set = r.published_fidelities.expect("published stage carries a set");
            assert!(set.compressed && !set.quantized);
            assert_eq!(set.to_string(), "master+compressed");
        }
        assert_eq!(published.len(), ok, "one publication per successful stage");
        assert_eq!(published.last().unwrap().0, reports.last().unwrap().stage);
        // The last publication carries the weights the loop ends with.
        assert_eq!(published.last().unwrap().1, s.model.get_params());
    }

    #[test]
    fn rejected_publish_is_recorded_and_skipped_not_aborted() {
        let scale = GenScale { frames_per_temperature: 8, equilibration: 20, stride: 2 };
        let mut s = setup(PaperSystem::Al, &scale, ModelScale::Small, 6);
        let shards = shards_by_temperature(&s.train);
        let looper = OnlineLoop {
            cfg: TrainConfig {
                batch_size: 4,
                max_epochs: 2,
                eval_frames: 8,
                ..Default::default()
            },
            fekf: FekfConfig::default(),
            robust: RobustConfig::default(),
        };
        let reports = looper.run_published(&mut s.model, &shards[..2], &mut |_, r| {
            if r.stage == 0 {
                Err("registry refused: checksum mismatch".into())
            } else {
                Ok(FidelitySet::default())
            }
        });
        assert_eq!(reports.len(), 2, "a failed publish must not abort the loop");
        assert!(reports[0].succeeded(), "the retrain itself was fine");
        assert!(!reports[0].published());
        assert!(reports[0].published_fidelities.is_none(), "rejected publish ships no tiers");
        assert_eq!(
            reports[0].publish_failure.as_deref(),
            Some("registry refused: checksum mismatch")
        );
        assert!(reports[1].published(), "stage 1 publishes normally");
    }

    #[test]
    fn failed_stage_is_recorded_and_skipped_not_aborted() {
        let scale = GenScale { frames_per_temperature: 8, equilibration: 20, stride: 2 };
        let mut s = setup(PaperSystem::Al, &scale, ModelScale::Small, 6);
        let shards = shards_by_temperature(&s.train);
        // A zero-retry budget plus an injected P-block upset in stage
        // 0's iteration range makes that stage's retrain fail; the loop
        // must record it and continue into stage 1.
        let looper = OnlineLoop {
            cfg: TrainConfig {
                batch_size: 4,
                max_epochs: 2,
                eval_frames: 8,
                ..Default::default()
            },
            fekf: FekfConfig::default(),
            robust: RobustConfig {
                max_rollbacks: 0,
                poison_p_at: Some((2, 0)),
                ..RobustConfig::default()
            },
        };
        let reports = looper.run(&mut s.model, &shards[..2]);
        assert_eq!(reports.len(), 2, "a failed stage must not abort the loop");
        assert!(!reports[0].succeeded(), "stage 0 should have failed");
        assert!(
            reports[0].failure.as_deref().unwrap().contains("diverged"),
            "failure surfaced: {:?}",
            reports[0].failure
        );
        // The one-shot upset fired in stage 0, so stage 1 retrains
        // cleanly on the recovered model.
        assert!(reports[1].succeeded(), "stage 1 failed: {:?}", reports[1].failure);
        assert!(reports[1].after.combined().is_finite());
        // The model carried forward is healthy (best-effort recovery).
        assert!(s.model.get_params().iter().all(|v| v.is_finite()));
    }
}
