//! Kalman-filter prediction targets (Algorithm 1, lines 3–7).
//!
//! For each sample the EKF needs, per weight update:
//!
//! * the **signed gradient** `g = ∇_θ Σ_k (±ŷ_k)` where a component's
//!   sign is flipped when `ŷ_k ≥ y_k` (lines 3–5) — so the Kalman gain
//!   always points from prediction towards label,
//! * the **absolute error** `ABE = mean_k |y_k − ŷ_k|` (line 6).
//!
//! One iteration performs one *energy* update (`ŷ = Ê_tot`, a single
//! component) and `n_groups` *force* updates, each over the force
//! components of a disjoint round-robin group of atoms (§4: "updated
//! one time with total Energy and four times with atomic force").

use deepmd_core::model::{DeepPotModel, ForwardPass, ModelGrads};
use deepmd_core::tape_path;
use dp_data::dataset::Snapshot;

/// Which derivative implementation the trainer drives.
///
/// [`Backend::Manual`] is the paper's Opt1+ path (handwritten fused
/// kernels); [`Backend::Tape`] is the framework-Autograd baseline of
/// Figure 7 — numerically identical, executed as fragmented primitive
/// kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Handwritten derivative kernels (Opt1).
    Manual,
    /// Tape-autograd baseline.
    Tape,
}

/// Signed gradient + absolute error for one KF update.
#[derive(Clone, Debug)]
pub struct KfTarget {
    /// `∇_θ Σ(±ŷ)` flattened over the model parameters.
    pub grad: Vec<f64>,
    /// Mean absolute error over the update's components.
    pub abe: f64,
}

/// Energy-update target for one sample.
pub fn energy_target(model: &DeepPotModel, pass: &ForwardPass) -> KfTarget {
    energy_target_with(model, pass, Backend::Manual)
}

/// Energy-update target computed with an explicit backend.
///
/// The Kalman update consumes the **per-atom** energy (`E_tot / N`),
/// as in the reference RLEKF/FEKF implementations: per-sample energy
/// errors are strongly sign-correlated early in training, so the
/// batch-mean signed gradient barely cancels and the `√bs` factor
/// would overshoot on the raw total energy; the per-atom scale keeps
/// the gain in the stable regime across system sizes.
pub fn energy_target_with(model: &DeepPotModel, pass: &ForwardPass, backend: Backend) -> KfTarget {
    let n = pass.frame.types.len().max(1) as f64;
    let err = (pass.frame.energy - pass.energy) / n;
    let sign = if err >= 0.0 { 1.0 } else { -1.0 };
    let mut grad = match backend {
        Backend::Manual => model.grad_energy_params(pass),
        Backend::Tape => tape_path::grad_energy_params_tape(model, pass.frame),
    };
    let scale = sign / n;
    for g in &mut grad {
        *g *= scale;
    }
    KfTarget { grad, abe: err.abs() }
}

/// Accumulating form of [`energy_target_with`]: adds the signed,
/// per-atom-scaled energy gradient into `acc` (length `n_params`) and
/// returns the sample's absolute per-atom energy error.
///
/// `scratch` is a recycled model-shaped gradient buffer (lazily
/// created on first use) so the steady-state batch loop allocates
/// nothing; summing `scale · g` directly into `acc` is bitwise
/// identical to materialising the scaled per-sample vector first
/// (`0 + scale·g == scale·g`, and accumulation order is the caller's).
pub fn accumulate_energy_target(
    model: &DeepPotModel,
    pass: &ForwardPass,
    backend: Backend,
    scratch: &mut Option<ModelGrads>,
    acc: &mut [f64],
) -> f64 {
    let n = pass.frame.types.len().max(1) as f64;
    let err = (pass.frame.energy - pass.energy) / n;
    let sign = if err >= 0.0 { 1.0 } else { -1.0 };
    let scale = sign / n;
    match backend {
        Backend::Manual => {
            let g = scratch.get_or_insert_with(|| model.zero_grads());
            g.zero();
            model.backward_energy_params(pass, g);
            model.add_flattened_scaled(g, scale, acc);
        }
        Backend::Tape => {
            let grad = tape_path::grad_energy_params_tape(model, pass.frame);
            for (a, gv) in acc.iter_mut().zip(&grad) {
                *a += scale * gv;
            }
        }
    }
    err.abs()
}

/// Accumulating form of [`force_targets_with`]: for each round-robin
/// force group `k`, adds the group's signed gradient into
/// `acc[k * n_params ..]` and its absolute error into `abes[k]`.
///
/// `acc` holds `n_groups` slots of `n_params` each; groups beyond the
/// effective count (`n_groups` clamped to `n_atoms`) are left
/// untouched, which is the additive identity for the batch reduction.
/// Group membership is the `i % n_groups` round-robin of
/// [`force_groups`], iterated directly (`i = k, k+ng, …`) so no index
/// lists are built.
#[allow(clippy::too_many_arguments)]
pub fn accumulate_force_targets(
    model: &DeepPotModel,
    pass: &ForwardPass,
    forces_pred: &[dp_mdsim::Vec3],
    frame: &Snapshot,
    n_groups: usize,
    backend: Backend,
    scratch: &mut Option<ModelGrads>,
    coeffs: &mut Vec<f64>,
    acc: &mut [f64],
    abes: &mut [f64],
) {
    let n_atoms = frame.types.len();
    let ng = n_groups.max(1).min(n_atoms.max(1));
    let n_params = model.n_params();
    if coeffs.len() < 3 * n_atoms {
        coeffs.resize(3 * n_atoms, 0.0);
    }
    for k in 0..ng {
        let coeffs = &mut coeffs[..3 * n_atoms];
        coeffs.fill(0.0);
        let mut abs_sum = 0.0;
        let mut count = 0usize;
        let mut i = k;
        while i < n_atoms {
            for a in 0..3 {
                let err = frame.forces[i].0[a] - forces_pred[i].0[a];
                coeffs[3 * i + a] = if err >= 0.0 { 1.0 } else { -1.0 };
                abs_sum += err.abs();
                count += 1;
            }
            i += ng;
        }
        let slot = &mut acc[k * n_params..(k + 1) * n_params];
        match backend {
            Backend::Manual => {
                let g = scratch.get_or_insert_with(|| model.zero_grads());
                g.zero();
                model.grad_force_sum_params_into(pass, coeffs, g);
                model.add_flattened_scaled(g, 1.0, slot);
            }
            Backend::Tape => {
                let grad = tape_path::grad_force_sum_params_tape(model, frame, coeffs);
                for (a, gv) in slot.iter_mut().zip(&grad) {
                    *a += gv;
                }
            }
        }
        abes[k] += abs_sum / count.max(1) as f64;
    }
}

/// Round-robin atom groups: atom `i` belongs to group `i % n_groups`.
pub fn force_groups(n_atoms: usize, n_groups: usize) -> Vec<Vec<usize>> {
    let n_groups = n_groups.max(1).min(n_atoms.max(1));
    let mut groups = vec![Vec::new(); n_groups];
    for i in 0..n_atoms {
        groups[i % n_groups].push(i);
    }
    groups
}

/// Force-update targets for one sample: one per atom group. All share
/// the forward `pass` (and its predicted `forces`).
pub fn force_targets(
    model: &DeepPotModel,
    pass: &ForwardPass,
    forces_pred: &[dp_mdsim::Vec3],
    frame: &Snapshot,
    n_groups: usize,
) -> Vec<KfTarget> {
    force_targets_with(model, pass, forces_pred, frame, n_groups, Backend::Manual)
}

/// Force-update targets computed with an explicit backend.
pub fn force_targets_with(
    model: &DeepPotModel,
    pass: &ForwardPass,
    forces_pred: &[dp_mdsim::Vec3],
    frame: &Snapshot,
    n_groups: usize,
    backend: Backend,
) -> Vec<KfTarget> {
    let n_atoms = frame.types.len();
    force_groups(n_atoms, n_groups)
        .into_iter()
        .map(|group| {
            let mut coeffs = vec![0.0; 3 * n_atoms];
            let mut abs_sum = 0.0;
            let mut count = 0usize;
            for &i in &group {
                for a in 0..3 {
                    let err = frame.forces[i].0[a] - forces_pred[i].0[a];
                    coeffs[3 * i + a] = if err >= 0.0 { 1.0 } else { -1.0 };
                    abs_sum += err.abs();
                    count += 1;
                }
            }
            let grad = match backend {
                Backend::Manual => model.grad_force_sum_params(pass, &coeffs),
                Backend::Tape => {
                    tape_path::grad_force_sum_params_tape(model, frame, &coeffs)
                }
            };
            KfTarget { grad, abe: abs_sum / count.max(1) as f64 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmd_core::config::ModelConfig;
    use dp_data::dataset::Dataset;
    use dp_mdsim::lattice::{fcc, Species};
    use dp_mdsim::Vec3;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn frame(seed: u64) -> Snapshot {
        let mut s = fcc(Species::new("A", 30.0), 4.0, [2, 2, 2]);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        s.jitter_positions(0.2, &mut rng);
        Snapshot {
            cell: s.cell.lengths(),
            types: s.types.clone(),
            type_names: s.type_names.clone(),
            pos: s.pos.clone(),
            energy: -3.5 - 0.2 * seed as f64,
            forces: (0..s.n_atoms())
                .map(|i| Vec3::new(0.2 * (i as f64 - 1.5), 0.1, -0.15))
                .collect(),
            temperature: 300.0,
        }
    }

    fn model() -> DeepPotModel {
        let mut cfg = ModelConfig::small(1, 3.1);
        cfg.rcut_smooth = 2.0;
        let mut ds = Dataset::new("t", vec!["A".into()]);
        ds.push(frame(1));
        ds.push(frame(2));
        DeepPotModel::new(cfg, &ds)
    }

    #[test]
    fn energy_target_sign_points_towards_label() {
        let m = model();
        let f = frame(3);
        let pass = m.forward(&f);
        let t = energy_target(&m, &pass);
        // Taking a small step along the Kalman-gain direction (here the
        // raw signed gradient as proxy) must reduce |E_label − Ê|.
        let err0 = (f.energy - pass.energy).abs();
        let mut m2 = m.clone();
        let step: Vec<f64> = t.grad.iter().map(|g| 1e-4 * g).collect();
        m2.apply_update(&step);
        let err1 = (f.energy - m2.forward(&f).energy).abs();
        assert!(err1 < err0, "step along signed gradient must reduce error: {err0} → {err1}");
        // The ABE is the per-atom energy error.
        assert!((t.abe - err0 / f.types.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn force_groups_partition_atoms() {
        let groups = force_groups(10, 4);
        assert_eq!(groups.len(), 4);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // Balanced within 1.
        let lens: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
    }

    #[test]
    fn more_groups_than_atoms_degrades_gracefully() {
        let groups = force_groups(2, 4);
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn force_targets_have_positive_abe_and_full_length_grads() {
        let m = model();
        let f = frame(4);
        let pass = m.forward(&f);
        let forces = m.forces(&pass);
        let targets = force_targets(&m, &pass, &forces, &f, 4);
        assert_eq!(targets.len(), 4);
        for t in &targets {
            assert_eq!(t.grad.len(), m.n_params());
            assert!(t.abe > 0.0);
            assert!(t.grad.iter().any(|&g| g != 0.0), "gradient must be nonzero");
        }
    }

    #[test]
    fn accumulate_forms_match_materialized_targets_bitwise() {
        let m = model();
        let f = frame(6);
        let pass = m.forward(&f);
        let forces = m.forces(&pass);
        let n_params = m.n_params();
        let n_groups = 4;

        let et = energy_target_with(&m, &pass, Backend::Manual);
        let mut scratch = None;
        let mut acc = vec![0.0; n_params];
        let abe = accumulate_energy_target(&m, &pass, Backend::Manual, &mut scratch, &mut acc);
        assert_eq!(abe.to_bits(), et.abe.to_bits());
        for (a, b) in acc.iter().zip(&et.grad) {
            assert_eq!(a.to_bits(), b.to_bits(), "energy gradient must match bitwise");
        }

        let fts = force_targets_with(&m, &pass, &forces, &f, n_groups, Backend::Manual);
        let mut coeffs = Vec::new();
        let mut facc = vec![0.0; n_groups * n_params];
        let mut abes = vec![0.0; n_groups];
        accumulate_force_targets(
            &m, &pass, &forces, &f, n_groups, Backend::Manual,
            &mut scratch, &mut coeffs, &mut facc, &mut abes,
        );
        assert_eq!(fts.len(), n_groups);
        for (k, t) in fts.iter().enumerate() {
            assert_eq!(abes[k].to_bits(), t.abe.to_bits());
            for (a, b) in facc[k * n_params..(k + 1) * n_params].iter().zip(&t.grad) {
                assert_eq!(a.to_bits(), b.to_bits(), "group {k} gradient must match bitwise");
            }
        }
    }

    #[test]
    fn force_update_step_reduces_group_error() {
        let m = model();
        let f = frame(5);
        let pass = m.forward(&f);
        let forces = m.forces(&pass);
        let targets = force_targets(&m, &pass, &forces, &f, 1);
        let group_err = |m: &DeepPotModel| -> f64 {
            let pass = m.forward(&f);
            let pred = m.forces(&pass);
            pred.iter()
                .zip(&f.forces)
                .map(|(p, l)| (0..3).map(|a| (l.0[a] - p.0[a]).abs()).sum::<f64>())
                .sum()
        };
        let e0 = group_err(&m);
        let mut m2 = m.clone();
        let step: Vec<f64> = targets[0].grad.iter().map(|g| 1e-5 * g).collect();
        m2.apply_update(&step);
        let e1 = group_err(&m2);
        assert!(e1 < e0, "signed force gradient must reduce error: {e0} → {e1}");
    }
}
