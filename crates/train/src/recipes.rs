//! One-call experiment entry points shared by the examples and the
//! benchmark binaries that regenerate the paper's tables and figures.

use crate::error::TrainError;
use crate::trainer::{RobustConfig, TrainConfig, TrainOutcome, Trainer};
use deepmd_core::config::ModelConfig;
use deepmd_core::model::DeepPotModel;
use dp_data::dataset::Dataset;
use dp_data::generate::{generate, GenScale};
use dp_data::split::train_test_split;
use dp_mdsim::systems::PaperSystem;
use dp_optim::adam::{Adam, AdamConfig};
use dp_optim::fekf::{Fekf, FekfConfig};
use dp_optim::rlekf::Rlekf;
use dp_parallel::DeviceGroup;

/// Network scale for an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelScale {
    /// The reduced network used in `--quick` mode (M = 8, d = 16) —
    /// same architecture, sized for the 2-core CPU substrate.
    Small,
    /// Mid-size network (M = 12, d = 24): the P update dominates the
    /// per-sample cost, as in the paper's wall-time regime.
    Medium,
    /// The paper's §4 network (M = 25, M^< = 16, d = 50; ~26.6k
    /// parameters per species).
    Paper,
}

/// A generated experiment: datasets plus a freshly initialized model.
pub struct ExperimentSetup {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
    /// Initialized (untrained) model.
    pub model: DeepPotModel,
}

/// Generate data for `system` and initialize a model.
///
/// The model's cutoff is tied to the labelling potential's cutoff
/// (capped by the minimum-image bound of the system's cell).
pub fn setup(system: PaperSystem, scale: &GenScale, model_scale: ModelScale, seed: u64) -> ExperimentSetup {
    let dataset = generate(system, scale, seed);
    let (train, test) = train_test_split(&dataset, 0.85, seed ^ 0xD5);
    let preset = system.preset();
    let (state, pot) = preset.instantiate();
    let rcut = pot
        .cutoff()
        .max(3.0)
        .min(0.5 * state.cell.min_length());
    let n_types = train.n_types();
    let mut cfg = match model_scale {
        ModelScale::Small => ModelConfig::small(n_types, rcut),
        ModelScale::Medium => ModelConfig::medium(n_types, rcut),
        ModelScale::Paper => ModelConfig::paper(n_types, rcut),
    };
    cfg.seed = seed.wrapping_add(17);
    let model = DeepPotModel::new(cfg, &train);
    ExperimentSetup { train, test, model }
}

/// Train `setup.model` in place with Adam (optionally with the Table 1
/// `√bs` learning-rate scaling).
pub fn run_adam(setup: &mut ExperimentSetup, cfg: TrainConfig, sqrt_bs_lr: bool) -> TrainOutcome {
    let adam_cfg = if sqrt_bs_lr {
        AdamConfig::default().with_sqrt_bs_scaling(cfg.batch_size)
    } else {
        AdamConfig::default()
    };
    let mut opt = Adam::new(setup.model.n_params(), adam_cfg);
    Trainer::new(cfg).train_adam(&mut setup.model, &mut opt, &setup.train, Some(&setup.test))
}

/// Train with single-sample RLEKF.
pub fn run_rlekf(setup: &mut ExperimentSetup, cfg: TrainConfig, blocksize: usize) -> TrainOutcome {
    let mut opt = Rlekf::new(&setup.model.layer_sizes(), blocksize, None, true);
    let cfg = TrainConfig { batch_size: 1, ..cfg };
    Trainer::new(cfg).train_rlekf(&mut setup.model, &mut opt, &setup.train, Some(&setup.test))
}

/// Collapse a robust-loop result into a best-effort outcome: a run that
/// exhausted its divergence-retry budget still hands back the best
/// weights it reached (the model is left in that state). Genuinely
/// unrecoverable failures — which the clean-link recipes cannot
/// produce — are reported loudly.
fn best_effort(result: Result<TrainOutcome, TrainError>) -> TrainOutcome {
    match result {
        Ok(out) => out,
        Err(TrainError::Diverged { outcome, .. }) => *outcome,
        Err(e) => panic!("unrecoverable training failure: {e}"),
    }
}

/// Train with FEKF on one device. Runs on the fault-tolerant loop:
/// divergence triggers rollback + `P`-reset instead of a NaN model, and
/// the best epoch's weights are kept if the final ones are worse.
pub fn run_fekf(setup: &mut ExperimentSetup, cfg: TrainConfig, fekf_cfg: FekfConfig) -> TrainOutcome {
    let mut opt = Fekf::new(&setup.model.layer_sizes(), cfg.batch_size, fekf_cfg);
    best_effort(Trainer::new(cfg).train_fekf_robust(
        &mut setup.model,
        &mut opt,
        &setup.train,
        Some(&setup.test),
        &RobustConfig::default(),
    ))
}

/// Train with FEKF data-parallel over `n_devices` logical devices, with
/// the same fault-tolerant semantics as [`run_fekf`].
pub fn run_fekf_distributed(
    setup: &mut ExperimentSetup,
    cfg: TrainConfig,
    fekf_cfg: FekfConfig,
    n_devices: usize,
) -> TrainOutcome {
    let mut opt = Fekf::new(&setup.model.layer_sizes(), cfg.batch_size, fekf_cfg);
    let devices = DeviceGroup::new(n_devices);
    best_effort(Trainer::new(cfg).train_fekf_distributed_robust(
        &mut setup.model,
        &mut opt,
        &setup.train,
        Some(&setup.test),
        &devices,
        &dp_parallel::FaultPlan::none(),
        &RobustConfig::default(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> GenScale {
        GenScale { frames_per_temperature: 8, equilibration: 20, stride: 2 }
    }

    #[test]
    fn setup_builds_consistent_experiment() {
        let s = setup(PaperSystem::Al, &tiny_scale(), ModelScale::Small, 1);
        assert_eq!(s.train.n_types(), 1);
        assert!(s.train.len() > s.test.len());
        assert!(s.model.n_params() > 0);
        // Model must be able to evaluate a frame.
        let p = s.model.predict(&s.test.frames[0]);
        assert!(p.energy.is_finite());
    }

    #[test]
    fn fekf_recipe_improves_over_initialization() {
        let mut s = setup(PaperSystem::Al, &tiny_scale(), ModelScale::Small, 2);
        let before = deepmd_core::loss::evaluate(&s.model, &s.test, 8);
        let cfg = TrainConfig {
            batch_size: 4,
            max_epochs: 3,
            eval_frames: 8,
            ..Default::default()
        };
        let out = run_fekf(&mut s, cfg, FekfConfig::default());
        assert!(out.final_test.unwrap().combined() < before.combined());
    }

    #[test]
    fn multispecies_setup_works() {
        let s = setup(PaperSystem::NaCl, &tiny_scale(), ModelScale::Small, 3);
        assert_eq!(s.train.n_types(), 2);
        let p = s.model.predict(&s.train.frames[0]);
        assert_eq!(p.forces.len(), 64);
    }
}
