//! Timing decomposition and training histories.
//!
//! Figure 7(c) splits one training iteration into three phases:
//! (1) network **forward** to predictions and errors, (2) **gradient**
//! computation for the EKF update, (3) the **KF** calculation flow
//! itself. [`PhaseTimes`] accumulates exactly that decomposition.

use deepmd_core::loss::Metrics;
use std::time::{Duration, Instant};

/// Accumulated per-phase wall time over a training run.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Forward pass (predictions + errors).
    pub forward: Duration,
    /// Gradient computation (∇θ of predictions).
    pub gradient: Duration,
    /// Optimizer computation (KF updates / Adam moments).
    pub optimizer: Duration,
}

impl PhaseTimes {
    /// Total of all phases.
    pub fn total(&self) -> Duration {
        self.forward + self.gradient + self.optimizer
    }

    /// Sum another accumulation into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.forward += other.forward;
        self.gradient += other.gradient;
        self.optimizer += other.optimizer;
    }
}

/// Measure one closure into a duration slot.
pub fn timed<T>(slot: &mut Duration, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    *slot += start.elapsed();
    out
}

/// Per-epoch record.
#[derive(Clone, Copy, Debug)]
pub struct EpochRecord {
    /// Epoch index (1-based).
    pub epoch: usize,
    /// Metrics on the (sub-sampled) training set.
    pub train: Metrics,
    /// Cumulative wall-clock seconds since training started.
    pub wall_s: f64,
}

/// History of a training run.
#[derive(Clone, Debug, Default)]
pub struct TrainHistory {
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
}

impl TrainHistory {
    /// Last recorded training metrics.
    pub fn last(&self) -> Option<&EpochRecord> {
        self.epochs.last()
    }

    /// First epoch whose metric fell at or below `target` (1-based),
    /// using the combined energy+force RMSE.
    pub fn epochs_to_reach(&self, target: f64) -> Option<usize> {
        self.epochs
            .iter()
            .find(|r| r.train.combined() <= target)
            .map(|r| r.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let mut d = Duration::default();
        let v = timed(&mut d, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(4));
        timed(&mut d, || ());
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn phase_times_merge_and_total() {
        let mut a = PhaseTimes {
            forward: Duration::from_millis(10),
            gradient: Duration::from_millis(20),
            optimizer: Duration::from_millis(30),
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), Duration::from_millis(120));
    }

    #[test]
    fn epochs_to_reach_finds_first_crossing() {
        let mk = |epoch, e| EpochRecord {
            epoch,
            train: Metrics { energy_rmse: e, energy_rmse_per_atom: 0.0, force_rmse: 0.0 },
            wall_s: 0.0,
        };
        let h = TrainHistory { epochs: vec![mk(1, 1.0), mk(2, 0.4), mk(3, 0.2)] };
        assert_eq!(h.epochs_to_reach(0.5), Some(2));
        assert_eq!(h.epochs_to_reach(0.1), None);
        assert_eq!(h.last().unwrap().epoch, 3);
    }
}
