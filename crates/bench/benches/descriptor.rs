//! Criterion micro-bench: the model's derivative sweeps — manual
//! (Opt1) vs tape-autograd (baseline) — on one frame. This is the
//! per-sample cost behind the Figure 7(c) forward/gradient phases.

use criterion::{criterion_group, criterion_main, Criterion};
use deepmd_core::config::ModelConfig;
use deepmd_core::model::DeepPotModel;
use deepmd_core::tape_path;
use dp_data::dataset::{Dataset, Snapshot};
use dp_mdsim::lattice::{fcc, Species};
use dp_mdsim::Vec3;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn frame(seed: u64) -> Snapshot {
    let mut s = fcc(Species::new("A", 30.0), 4.0, [2, 2, 2]);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    s.jitter_positions(0.15, &mut rng);
    Snapshot {
        cell: s.cell.lengths(),
        types: s.types.clone(),
        type_names: s.type_names.clone(),
        pos: s.pos.clone(),
        energy: -4.0,
        forces: vec![Vec3::ZERO; s.n_atoms()],
        temperature: 300.0,
    }
}

fn model() -> DeepPotModel {
    let mut cfg = ModelConfig::small(1, 3.1);
    cfg.rcut_smooth = 2.0;
    let mut ds = Dataset::new("b", vec!["A".into()]);
    ds.push(frame(1));
    ds.push(frame(2));
    DeepPotModel::new(cfg, &ds)
}

fn bench_derivatives(c: &mut Criterion) {
    let m = model();
    let f = frame(3);
    let coeffs: Vec<f64> = (0..3 * f.types.len())
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    let mut group = c.benchmark_group("derivatives");
    group.sample_size(20);
    group.bench_function("forward_manual", |b| {
        b.iter(|| black_box(m.forward(&f).energy))
    });
    group.bench_function("forces_manual", |b| {
        let pass = m.forward(&f);
        b.iter(|| black_box(m.forces(&pass)))
    });
    group.bench_function("forces_tape", |b| {
        b.iter(|| black_box(tape_path::forces_tape(&m, &f)))
    });
    group.bench_function("grad_energy_manual", |b| {
        let pass = m.forward(&f);
        b.iter(|| black_box(m.grad_energy_params(&pass)))
    });
    group.bench_function("grad_energy_tape", |b| {
        b.iter(|| black_box(tape_path::grad_energy_params_tape(&m, &f)))
    });
    group.bench_function("grad_force_sum_manual", |b| {
        let pass = m.forward(&f);
        b.iter(|| black_box(m.grad_force_sum_params(&pass, &coeffs)))
    });
    group.bench_function("grad_force_sum_tape", |b| {
        b.iter(|| black_box(tape_path::grad_force_sum_params_tape(&m, &f, &coeffs)))
    });
    group.finish();
}

criterion_group!(benches, bench_derivatives);
criterion_main!(benches);
