//! Criterion micro-bench: fused vs unfused P-matrix update — the
//! paper's Opt3 ("Rewrite P updating": the handwritten kernel avoids
//! the `K·Kᵀ` materialization and the transpose-average pass that the
//! framework composition performs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_optim::blocks::BlockLayout;
use dp_optim::pmatrix::BlockP;
use std::hint::black_box;

fn bench_p_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("p_update");
    group.sample_size(10);
    for &n in &[512usize, 2048] {
        let layout = BlockLayout::from_layer_sizes(&[n], n);
        let q: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos() * 0.01).collect();
        group.bench_with_input(BenchmarkId::new("fused", n), &n, |bch, _| {
            let mut p = BlockP::identity(&layout);
            bch.iter(|| {
                p.update_fused(0, black_box(&q), 0.5, 0.98);
            })
        });
        group.bench_with_input(BenchmarkId::new("unfused", n), &n, |bch, _| {
            let mut p = BlockP::identity(&layout);
            bch.iter(|| {
                black_box(p.update_unfused(0, black_box(&q), 0.5, 0.98));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_p_update);
criterion_main!(benches);
