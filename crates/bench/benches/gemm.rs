//! Criterion micro-bench: the GEMM kernels underlying the model and
//! the Kalman-filter updates (§3.4 notes the backend GEMMs are the
//! optimized primitives the custom kernels compete with).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_tensor::Mat;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for &n in &[32usize, 128, 400] {
        let a = Mat::from_fn(n, n, |r, cc| ((r * 31 + cc * 7) % 13) as f64 - 6.0);
        let b = Mat::from_fn(n, n, |r, cc| ((r * 3 + cc * 11) % 7) as f64 * 0.25);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)))
        });
        group.bench_with_input(BenchmarkId::new("t_matmul", n), &n, |bch, _| {
            bch.iter(|| black_box(a.t_matmul(&b)))
        });
    }
    group.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemv");
    group.sample_size(20);
    // The P·g product on the paper's largest block dominates the KF
    // update — benchmark a representative slice of that shape.
    for &n in &[1024usize, 4096] {
        let p = Mat::from_fn(n, n, |r, cc| if r == cc { 1.0 } else { 1e-4 });
        let g: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        group.bench_with_input(BenchmarkId::new("p_times_g", n), &n, |bch, _| {
            bch.iter(|| black_box(p.matvec(&g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_gemv);
criterion_main!(benches);
