//! Criterion micro-bench: ring vs naive allreduce at the paper's
//! gradient size (~26.6k f64, the {1350,10240,9760,5301} blocks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_parallel::ring::{naive_allreduce, ring_allreduce};
use std::hint::black_box;

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    let n = 26_651;
    for &r in &[2usize, 4] {
        let make = || -> Vec<Vec<f64>> {
            (0..r)
                .map(|rank| (0..n).map(|i| (rank * n + i) as f64 * 1e-6).collect())
                .collect()
        };
        group.bench_with_input(BenchmarkId::new("ring", r), &r, |bch, _| {
            bch.iter_batched(
                make,
                |mut bufs| black_box(ring_allreduce(&mut bufs)),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("naive", r), &r, |bch, _| {
            bch.iter_batched(
                make,
                |mut bufs| black_box(naive_allreduce(&mut bufs)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce);
criterion_main!(benches);
