//! # dp-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see
//! `DESIGN.md` §4 for the experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Adam epochs-to-target vs batch size |
//! | `table3` | dataset inventory |
//! | `table4` | FEKF bs-32 vs Adam bs-1 convergence ratio + RMSE |
//! | `table5` | Cu time-to-accuracy across batch/device configs |
//! | `fig4`   | quasi-learning-rate factor sweep |
//! | `fig7a`  | end-to-end wall time Adam/RLEKF/FEKF/FEKF-opt |
//! | `fig7b`  | kernel-launch counts per optimization level |
//! | `fig7c`  | iteration-time decomposition per optimization level |
//! | `memory_report` | §5.3 P-matrix memory accounting |
//! | `scaling_report` | §5.3 communication/scalability analysis |
//!
//! Every binary accepts `--paper-scale` (full-size network and larger
//! datasets) and sizing flags; the defaults are tuned so the whole
//! suite completes on a small CPU box. Results print in the paper's
//! row/series layout so EXPERIMENTS.md can compare line by line.

use dp_data::generate::GenScale;
use dp_mdsim::systems::PaperSystem;
use dp_train::recipes::ModelScale;
use std::fmt::Write as _;

pub mod load;
pub mod report;

/// Parsed command-line options shared by the experiment binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Use the paper-size network and heavier datasets.
    pub paper_scale: bool,
    /// Systems to run (default differs per binary).
    pub systems: Option<Vec<PaperSystem>>,
    /// Frames per generation temperature.
    pub frames: Option<usize>,
    /// Epoch budget override.
    pub epochs: Option<usize>,
    /// Batch size override.
    pub batch: Option<usize>,
    /// Random seed.
    pub seed: u64,
}

impl Args {
    /// Parse `std::env::args()`. Unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut out = Args {
            paper_scale: false,
            systems: None,
            frames: None,
            epochs: None,
            batch: None,
            seed: 2024,
        };
        for arg in std::env::args().skip(1) {
            if arg == "--paper-scale" {
                out.paper_scale = true;
            } else if arg == "--quick" {
                out.paper_scale = false;
            } else if let Some(v) = arg.strip_prefix("--systems=") {
                out.systems = Some(
                    v.split(',')
                        .map(|s| {
                            parse_system(s)
                                .unwrap_or_else(|| die(&format!("unknown system '{s}'")))
                        })
                        .collect(),
                );
            } else if let Some(v) = arg.strip_prefix("--frames=") {
                out.frames = Some(v.parse().unwrap_or_else(|_| die("bad --frames")));
            } else if let Some(v) = arg.strip_prefix("--epochs=") {
                out.epochs = Some(v.parse().unwrap_or_else(|_| die("bad --epochs")));
            } else if let Some(v) = arg.strip_prefix("--batch=") {
                out.batch = Some(v.parse().unwrap_or_else(|_| die("bad --batch")));
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                out.seed = v.parse().unwrap_or_else(|_| die("bad --seed"));
            } else if arg == "--help" || arg == "-h" {
                eprintln!(
                    "flags: --paper-scale --systems=Cu,Al,... --frames=N --epochs=N --batch=N --seed=N"
                );
                std::process::exit(0);
            } else {
                die(&format!("unknown flag '{arg}' (try --help)"));
            }
        }
        out
    }

    /// The model scale implied by the flags.
    pub fn model_scale(&self) -> ModelScale {
        if self.paper_scale {
            ModelScale::Paper
        } else {
            ModelScale::Small
        }
    }

    /// The data-generation scale implied by the flags, with a
    /// per-binary quick default for frames-per-temperature.
    pub fn gen_scale(&self, quick_frames: usize) -> GenScale {
        let frames = self
            .frames
            .unwrap_or(if self.paper_scale { 4 * quick_frames } else { quick_frames });
        GenScale { frames_per_temperature: frames, equilibration: 80, stride: 4 }
    }

    /// Systems to run, with a per-binary default.
    pub fn systems_or(&self, default: &[PaperSystem]) -> Vec<PaperSystem> {
        self.systems.clone().unwrap_or_else(|| default.to_vec())
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Parse a system name as written in the paper ("Cu", "H2O", …).
pub fn parse_system(s: &str) -> Option<PaperSystem> {
    PaperSystem::ALL
        .into_iter()
        .find(|sys| sys.preset().name.eq_ignore_ascii_case(s))
}

/// Minimal fixed-width table printer for the experiment outputs.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for c in 0..ncol {
                let _ = write!(out, "| {:w$} ", cells[c], w = widths[c]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.headers);
        for w in &widths {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
        }
        out.push_str("|\n");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1000.0)
    }
}

/// Format a byte count in MB.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_system_accepts_paper_names() {
        assert_eq!(parse_system("Cu"), Some(PaperSystem::Cu));
        assert_eq!(parse_system("h2o"), Some(PaperSystem::H2O));
        assert_eq!(parse_system("hfo2"), Some(PaperSystem::HfO2));
        assert_eq!(parse_system("Xx"), None);
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["sys", "value"]);
        t.row(&["Cu".into(), "1.5".into()]);
        t.row(&["NaCl".into(), "20".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("sys"));
        assert!(lines[2].contains("Cu"));
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(0.5), "500ms");
        assert_eq!(fmt_secs(12.34), "12.3s");
        assert_eq!(fmt_secs(250.0), "250s");
        assert_eq!(fmt_mb(1024 * 1024), "1.00 MB");
    }
}
