//! Machine-readable benchmark output.
//!
//! The perf gate (ISSUE 2) wants the kernel benchmarks to leave a
//! committed trajectory, so every record carries the knobs that decide
//! the number — shape and thread count — plus the median so one noisy
//! sample cannot move the baseline. The vendored `serde` shim has no
//! `serde_json`, so the emitter below writes the (flat, numeric) schema
//! by hand:
//!
//! ```json
//! {
//!   "bench": "gemm",
//!   "backend": "avx512",
//!   "backend_lanes": 8,
//!   "arch": "x86_64",
//!   "cpu_features": ["avx2", "fma", "avx512f"],
//!   "records": [
//!     {"name": "gemm", "shape": [512, 512, 512], "threads": 4,
//!      "median_ns": 123456.0, "samples": 9}
//!   ]
//! }
//! ```
//!
//! Since the backend split (DESIGN §13) every report is stamped with the
//! compute backend and detected CPU features it was measured under —
//! two machines (or two `DP_BACKEND` settings) produce baselines that
//! are not comparable, and the stamp makes that visible in the file.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of log2 buckets in a [`Histogram`] — covers the full u64
/// range, so any nanosecond latency or batch size fits.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Fixed-bucket log2 histogram with a lock- and allocation-free record
/// path, built for hot-loop telemetry (per-request latencies, batch
/// sizes). Bucket `b` holds values in `[2^b, 2^(b+1))` (value 0 lands
/// in bucket 0), so relative resolution is a factor of 2 — enough to
/// tell a p99 from a p50 without a single heap allocation or mutex on
/// the serving path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one value. Wait-free: one `fetch_add` on the value's
    /// bucket, no allocation.
    pub fn record(&self, value: u64) {
        let b = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded count.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the geometric midpoint of
    /// the bucket holding that rank, or `None` when nothing was
    /// recorded. Accurate to the factor-of-2 bucket width.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, c) in self.buckets.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                // Geometric midpoint of [2^b, 2^(b+1)): 2^(b+0.5).
                return Some(2f64.powi(b as i32) * std::f64::consts::SQRT_2);
            }
        }
        None
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the serving-SLO tail metric (DESIGN §12).
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Largest recorded bucket's upper bound (an upper bound on the
    /// maximum recorded value), or `None` when empty.
    pub fn max_bound(&self) -> Option<f64> {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, c)| c.load(Ordering::Relaxed) > 0)
            .map(|(b, _)| 2f64.powi(b as i32 + 1))
    }

    /// Non-empty `(bucket_lower_bound, count)` pairs, low to high.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((1u64 << b, n))
            })
            .collect()
    }
}

/// One measured configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Kernel / phase name, e.g. `"gemm"` or `"p_update_fused"`.
    pub name: String,
    /// Shape knobs in kernel-specific order (GEMM: `[m, k, n]`).
    pub shape: Vec<usize>,
    /// Pool thread count the record was measured at.
    pub threads: usize,
    /// Median wall time per operation, nanoseconds.
    pub median_ns: f64,
    /// Number of timed samples behind the median.
    pub samples: usize,
}

/// A named collection of records, one per `BENCH_*.json` file.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// Report name (`"gemm"`, `"p_update"`, `"train_iter"`).
    pub bench: String,
    /// Compute backend the process resolved from `DP_BACKEND` at
    /// startup — the dispatch every record in this file ran under
    /// (unless the record's name says otherwise, like the per-backend
    /// `gemm/<backend>` sweeps).
    pub backend: String,
    /// `f64` lanes per SIMD vector on that backend.
    pub backend_lanes: usize,
    /// Compile-target architecture (`x86_64`, `aarch64`, …).
    pub arch: String,
    /// CPU features detected at startup (what `auto` dispatch saw).
    pub cpu_features: Vec<String>,
    /// Measured configurations.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Start an empty report, stamped with the process-global backend
    /// and the CPU features behind it: a committed `BENCH_*.json` is
    /// meaningless as a baseline without knowing what dispatch produced
    /// it. Panics with the typed [`dp_tensor::backend::BackendError`]
    /// message when `DP_BACKEND` names a backend this CPU lacks — a
    /// bench run must never silently fall back.
    pub fn new(bench: &str) -> Self {
        let kind = dp_tensor::backend::try_global_kind()
            .unwrap_or_else(|e| panic!("dp-bench: {e}"));
        BenchReport {
            bench: bench.to_string(),
            backend: kind.name().to_string(),
            backend_lanes: kind.lanes(),
            arch: std::env::consts::ARCH.to_string(),
            cpu_features: dp_tensor::backend::detected_features()
                .into_iter()
                .map(|f| f.to_string())
                .collect(),
            records: Vec::new(),
        }
    }

    /// Append one record.
    pub fn push(&mut self, name: &str, shape: &[usize], threads: usize, median_ns: f64, samples: usize) {
        self.records.push(BenchRecord {
            name: name.to_string(),
            shape: shape.to_vec(),
            threads,
            median_ns,
            samples,
        });
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_str(&self.bench)));
        out.push_str(&format!("  \"backend\": {},\n", json_str(&self.backend)));
        out.push_str(&format!("  \"backend_lanes\": {},\n", self.backend_lanes));
        out.push_str(&format!("  \"arch\": {},\n", json_str(&self.arch)));
        let feats = self
            .cpu_features
            .iter()
            .map(|f| json_str(f))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("  \"cpu_features\": [{}],\n", feats));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let shape = r
                .shape
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"name\": {}, \"shape\": [{}], \"threads\": {}, \"median_ns\": {}, \"samples\": {}}}{}\n",
                json_str(&r.name),
                shape,
                r.threads,
                json_f64(r.median_ns),
                r.samples,
                if i + 1 == self.records.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `to_json()` to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Look up a record by name and shape (test/CI helper).
    pub fn find(&self, name: &str, shape: &[usize], threads: usize) -> Option<&BenchRecord> {
        self.records
            .iter()
            .find(|r| r.name == name && r.shape == shape && r.threads == threads)
    }
}

/// One correctness check in a [`VerifyReport`]: an oracle evaluated
/// over `cases` generated inputs, of which `failures` exceeded `tol`.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyCheck {
    /// Oracle family (`"gradcheck"`, `"invariants"`, `"differential"`,
    /// `"golden"`).
    pub family: String,
    /// Check name, e.g. `"forces_vs_fd/NaCl"`.
    pub name: String,
    /// Workspace crates whose kernels this check gates.
    pub gates: Vec<String>,
    /// Number of generated cases evaluated.
    pub cases: usize,
    /// Cases whose error exceeded `tol`.
    pub failures: usize,
    /// Worst per-component relative error observed (0 for exact/bitwise
    /// checks that passed).
    pub max_rel_err: f64,
    /// The tolerance the check enforced (0 means bitwise).
    pub tol: f64,
    /// Human-readable details for the worst failures (empty when all
    /// cases passed).
    pub details: Vec<String>,
}

/// Machine-readable output of the `dp-verify` harness: one record per
/// oracle check, plus the knobs (seed, profile) that decide what was
/// generated. Written to `results/verify/VERIFY_report.json` by the
/// `verify` bin and consumed by `scripts/ci.sh`.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Generator seed the run used.
    pub seed: u64,
    /// Case-count profile (`"quick"` or `"full"`).
    pub profile: String,
    /// All evaluated checks.
    pub checks: Vec<VerifyCheck>,
}

impl VerifyReport {
    /// Start an empty report for one harness run.
    pub fn new(seed: u64, profile: &str) -> Self {
        VerifyReport { seed, profile: profile.to_string(), checks: Vec::new() }
    }

    /// Append one check outcome.
    pub fn push(&mut self, check: VerifyCheck) {
        self.checks.push(check);
    }

    /// Total failing cases across all checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().map(|c| c.failures).sum()
    }

    /// Total evaluated cases across all checks.
    pub fn cases(&self) -> usize {
        self.checks.iter().map(|c| c.cases).sum()
    }

    /// Names of the families that ran at least one case.
    pub fn families(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.checks {
            if !out.contains(&c.family) {
                out.push(c.family.clone());
            }
        }
        out
    }

    /// Serialize to JSON (same hand-rolled emitter as [`BenchReport`]:
    /// the vendored serde shim has no `serde_json`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"profile\": {},\n", json_str(&self.profile)));
        out.push_str(&format!("  \"cases\": {},\n", self.cases()));
        out.push_str(&format!("  \"failures\": {},\n", self.failures()));
        out.push_str("  \"checks\": [\n");
        for (i, c) in self.checks.iter().enumerate() {
            let gates = c
                .gates
                .iter()
                .map(|g| json_str(g))
                .collect::<Vec<_>>()
                .join(", ");
            let details = c
                .details
                .iter()
                .map(|d| json_str(d))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"family\": {}, \"name\": {}, \"gates\": [{}], \"cases\": {}, \"failures\": {}, \"max_rel_err\": {}, \"tol\": {}, \"details\": [{}]}}{}\n",
                json_str(&c.family),
                json_str(&c.name),
                gates,
                c.cases,
                c.failures,
                json_f64(c.max_rel_err),
                json_f64(c.tol),
                details,
                if i + 1 == self.checks.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `to_json()` to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Always embed a decimal point so readers parse a float.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// Median wall time per call of `f`, in nanoseconds.
///
/// Each sample times `inner` back-to-back calls; `inner` is chosen from
/// one calibration call so a sample lasts ≳ 2 ms (amortizing timer and
/// pool-wake overhead for microsecond-scale kernels), capped so the
/// whole measurement stays bounded for second-scale ones.
pub fn measure(samples: usize, mut f: impl FnMut()) -> (f64, usize) {
    let t0 = Instant::now();
    f();
    let once_ns = t0.elapsed().as_nanos().max(1) as f64;
    let inner = ((2e6 / once_ns).ceil() as usize).clamp(1, 10_000);
    let samples = samples.max(1);
    let mut per_op: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..inner {
            f();
        }
        per_op.push(t.elapsed().as_nanos() as f64 / inner as f64);
    }
    per_op.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (per_op[per_op.len() / 2], samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut r = BenchReport::new("gemm");
        r.push("gemm", &[4, 4, 4], 2, 1536.25, 9);
        r.push("gemv", &[128], 1, 200.0, 5);
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"gemm\""));
        // Backend metadata is stamped from the live process dispatch.
        let kind = dp_tensor::backend::try_global_kind().unwrap();
        assert!(j.contains(&format!("\"backend\": \"{}\"", kind.name())));
        assert!(j.contains(&format!("\"backend_lanes\": {}", kind.lanes())));
        assert!(j.contains(&format!("\"arch\": \"{}\"", std::env::consts::ARCH)));
        assert!(j.contains("\"cpu_features\": ["));
        assert!(j.contains("\"shape\": [4, 4, 4]"));
        assert!(j.contains("\"median_ns\": 1536.25"));
        assert!(j.contains("\"median_ns\": 200.0"), "integral medians keep a decimal point");
        assert!(j.contains("\"threads\": 2"));
        // Exactly one trailing comma between records, none after the last.
        assert_eq!(j.matches("}},").count() + j.matches("},\n").count(), 1);
    }

    #[test]
    fn find_matches_name_shape_threads() {
        let mut r = BenchReport::new("x");
        r.push("a", &[8], 1, 10.0, 3);
        r.push("a", &[8], 4, 5.0, 3);
        assert_eq!(r.find("a", &[8], 4).unwrap().median_ns, 5.0);
        assert!(r.find("a", &[9], 4).is_none());
    }

    #[test]
    fn measure_returns_positive_median() {
        let mut acc = 0u64;
        let (ns, samples) = measure(5, || {
            acc = acc.wrapping_add(1);
        });
        assert!(ns > 0.0);
        assert_eq!(samples, 5);
        assert!(acc > 0);
    }

    #[test]
    fn verify_report_json_shape_is_stable() {
        let mut r = VerifyReport::new(42, "quick");
        r.push(VerifyCheck {
            family: "gradcheck".into(),
            name: "forces_vs_fd/NaCl".into(),
            gates: vec!["deepmd-core".into()],
            cases: 12,
            failures: 1,
            max_rel_err: 3.5e-4,
            tol: 1e-5,
            details: vec!["atom 3 comp z: fd 0.1 vs analytic 0.2".into()],
        });
        r.push(VerifyCheck {
            family: "differential".into(),
            name: "gemm_tiled_vs_naive".into(),
            gates: vec!["dp-tensor".into()],
            cases: 8,
            failures: 0,
            max_rel_err: 0.0,
            tol: 0.0,
            details: Vec::new(),
        });
        let j = r.to_json();
        assert!(j.contains("\"seed\": 42"));
        assert!(j.contains("\"profile\": \"quick\""));
        assert!(j.contains("\"cases\": 20"));
        assert!(j.contains("\"failures\": 1"));
        assert!(j.contains("\"family\": \"gradcheck\""));
        assert!(j.contains("\"gates\": [\"dp-tensor\"]"));
        assert_eq!(r.failures(), 1);
        assert_eq!(r.families(), vec!["gradcheck".to_string(), "differential".to_string()]);
    }

    #[test]
    fn escaped_strings_stay_valid() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        // 0 and 1 share bucket 0; 2 and 3 bucket 1; 1023 bucket 9;
        // 1024 bucket 10.
        let buckets = h.nonzero_buckets();
        assert_eq!(
            buckets,
            vec![(1, 2), (2, 2), (4, 2), (8, 1), (512, 1), (1024, 1)]
        );
    }

    #[test]
    fn histogram_percentiles_are_bucket_accurate() {
        let h = Histogram::new();
        // 90 values around 100 ns, 9 around 10 µs, 1 around 1 ms.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let p50 = h.p50().unwrap();
        let p90 = h.p90().unwrap();
        let p99 = h.p99().unwrap();
        assert!((64.0..256.0).contains(&p50), "p50 {p50}");
        assert!((64.0..256.0).contains(&p90), "p90 {p90}");
        assert!((8192.0..32768.0).contains(&p99), "p99 {p99}");
        let p999 = h.p999().unwrap();
        assert!((524288.0..2097152.0).contains(&p999), "p999 {p999}");
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        assert!(h.max_bound().unwrap() >= 1_000_000.0);
    }

    #[test]
    fn histogram_is_safe_under_concurrent_recording() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(i * (t + 1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
