//! Open-loop load generation for the serving benchmarks.
//!
//! Closed-loop clients (issue → wait → issue) hide queueing pathologies:
//! the moment the server slows down, the offered load politely drops
//! with it, and the tail you report is the tail of a self-throttling
//! system. An *open-loop* generator issues requests on an arrival
//! clock that does not care about completions — the standard
//! methodology for tail-latency measurement — and heavy-tailed
//! inter-arrival gaps produce the bursts that actually stress a
//! two-lane queue.
//!
//! [`BoundedPareto`] is the gap distribution: inverse-CDF sampling of
//! `gap = base · u^(-1/α)` with the tail truncated at `cap × base`, so
//! one unlucky draw cannot stall the whole run. The default shape
//! (`α = 1.25`, i.e. `u^-0.8`, cap 100×) gives a mean a few times
//! `base` with occasional multi-hundred-request bursts.

use std::time::Duration;

/// Bounded-Pareto inter-arrival sampler (inverse-CDF, allocation-free).
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    base_ns: f64,
    inv_alpha: f64,
    cap_ns: f64,
}

impl BoundedPareto {
    /// Gap distribution with minimum `base`, Pareto shape `alpha`
    /// (smaller = heavier tail; must be > 0), truncated at
    /// `cap_factor × base`.
    pub fn new(base: Duration, alpha: f64, cap_factor: f64) -> Self {
        assert!(alpha > 0.0, "Pareto shape must be positive");
        assert!(cap_factor >= 1.0, "cap must not cut below the base gap");
        let base_ns = base.as_nanos() as f64;
        BoundedPareto {
            base_ns,
            inv_alpha: 1.0 / alpha,
            cap_ns: base_ns * cap_factor,
        }
    }

    /// The paper-bench default: `gap = base · u^-0.8`, capped at
    /// `100 × base`.
    pub fn serving_default(base: Duration) -> Self {
        Self::new(base, 1.25, 100.0)
    }

    /// Map one uniform draw `u ∈ (0, 1]` to an inter-arrival gap.
    /// Monotone decreasing in `u`: small draws are the bursts' long
    /// quiet prefixes, `u = 1` is the minimum gap.
    pub fn sample(&self, u: f64) -> Duration {
        let u = u.clamp(f64::MIN_POSITIVE, 1.0);
        let gap = (self.base_ns * u.powf(-self.inv_alpha)).min(self.cap_ns);
        Duration::from_nanos(gap as u64)
    }
}

/// Seeded open-loop arrival clock: an iterator of inter-arrival gaps
/// from a [`BoundedPareto`], deterministic in the seed (xorshift64 —
/// same generator family as the verify harness, no `rand` plumbing).
#[derive(Clone, Debug)]
pub struct OpenLoop {
    dist: BoundedPareto,
    state: u64,
}

impl OpenLoop {
    /// A clock over `dist`, seeded; two clocks with the same seed
    /// produce the same arrival schedule.
    pub fn new(dist: BoundedPareto, seed: u64) -> Self {
        OpenLoop { dist, state: seed.max(1) }
    }

    /// Next uniform draw in `(0, 1]`.
    fn next_uniform(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        // 53 mantissa bits, shifted into (0, 1].
        ((x >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// The next inter-arrival gap.
    pub fn next_gap(&mut self) -> Duration {
        let u = self.next_uniform();
        self.dist.sample(u)
    }
}

impl Iterator for OpenLoop {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        Some(self.next_gap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_monotone_bounded_and_capped() {
        let d = BoundedPareto::serving_default(Duration::from_micros(100));
        let base = Duration::from_micros(100);
        let cap = Duration::from_millis(10);
        assert_eq!(d.sample(1.0), base, "u=1 is the minimum gap");
        let mut last = Duration::MAX;
        for i in 1..=1000 {
            let u = i as f64 / 1000.0;
            let g = d.sample(u);
            assert!(g >= base && g <= cap, "u={u}: gap {g:?} out of [base, cap]");
            assert!(g <= last, "u={u}: sample must be monotone decreasing");
            last = g;
        }
        // The tail really is truncated: a vanishing draw hits the cap.
        assert_eq!(d.sample(1e-300), cap);
    }

    #[test]
    fn open_loop_is_deterministic_and_heavy_tailed() {
        let dist = BoundedPareto::serving_default(Duration::from_micros(50));
        let a: Vec<_> = OpenLoop::new(dist, 7).take(4096).collect();
        let b: Vec<_> = OpenLoop::new(dist, 7).take(4096).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let c: Vec<_> = OpenLoop::new(dist, 8).take(4096).collect();
        assert_ne!(a, c, "different seed, different schedule");
        // Heavy tail: the max gap dwarfs the median gap.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let max = *sorted.last().unwrap();
        assert!(
            max > 10 * median,
            "expected a heavy tail: median {median:?}, max {max:?}"
        );
        // Every gap respects the bounds.
        let base = Duration::from_micros(50);
        assert!(a.iter().all(|&g| g >= base && g <= 100 * base));
    }
}
