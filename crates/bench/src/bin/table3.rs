//! Table 3 — dataset description: the eight physical systems, their
//! generation temperatures, time steps, snapshot counts and atom
//! counts, side by side with this reproduction's realized values.

use dp_bench::{Args, Table};
use dp_mdsim::systems::PaperSystem;

fn main() {
    let args = Args::parse();
    let scale = args.gen_scale(60);
    println!("# Table 3: dataset description (paper vs this reproduction)");
    println!(
        "# our snapshot counts assume {} frames per temperature at the chosen scale\n",
        scale.frames_per_temperature
    );
    let mut t = Table::new(&[
        "System",
        "Temperatures (K)",
        "dt (fs)",
        "# snapshots (paper)",
        "# snapshots (ours)",
        "atoms (paper)",
        "atoms (ours)",
        "oracle potential",
    ]);
    for sys in PaperSystem::ALL {
        let p = sys.preset();
        let (state, pot) = p.instantiate();
        let temps = p
            .temperatures
            .iter()
            .map(|t| format!("{t:.0}"))
            .collect::<Vec<_>>()
            .join(",");
        t.row(&[
            p.name.to_string(),
            temps,
            format!("{:.0}", p.dt),
            p.paper_snapshots.to_string(),
            (scale.frames_per_temperature * p.temperatures.len()).to_string(),
            p.paper_atoms.to_string(),
            state.n_atoms().to_string(),
            pot.name().to_string(),
        ]);
    }
    t.print();
    println!("\n# substitution: classical-potential labels replace the paper's PWmat DFT labels (DESIGN.md §1).");
}
