//! Figure 7(b) — number of kernels launched per training iteration
//! under the step-by-step system optimizations.
//!
//! Configurations (cumulative, as in §5.3):
//! * **baseline** — tape-autograd derivatives (the framework path),
//!   unfused P update, no fusion,
//! * **opt1** — handwritten derivative kernels (manual force/gradient
//!   sweeps),
//! * **opt2** — + kernel fusion (the `torch.compile` analogue),
//! * **opt3** — + the custom fused P-update kernel with `P·g` caching.
//!
//! Counts are split into the FEKF update driven by *energy* predictions
//! and the one driven by *force* predictions (the paper's left/right
//! bars: 397→174 and 846→281, 64% fewer overall).

use dp_bench::{Args, Table};
use dp_mdsim::systems::PaperSystem;
use dp_optim::fekf::{Fekf, FekfConfig};
use dp_tensor::kernel;
use dp_train::recipes::{setup, ExperimentSetup};
use dp_train::targets::{energy_target_with, force_targets_with, Backend};

struct Config {
    name: &'static str,
    backend: Backend,
    fused_p: bool,
    fusion: bool,
}

fn measure(s: &ExperimentSetup, batch: &[usize], cfg: &Config) -> (u64, u64) {
    let model = s.model.clone();
    let mut opt = Fekf::new(
        &model.layer_sizes(),
        batch.len(),
        FekfConfig { fused: cfg.fused_p, ..FekfConfig::default() },
    );
    kernel::set_fusion_enabled(cfg.fusion);
    let n_params = model.n_params();

    // Energy segment.
    let ((), energy_launches) = kernel::count_region(|| {
        let mut gbar = vec![0.0; n_params];
        let mut abe = 0.0;
        for &i in batch {
            let frame = &s.train.frames[i];
            let pass = model.forward(frame);
            let t = energy_target_with(&model, &pass, cfg.backend);
            for (x, y) in gbar.iter_mut().zip(&t.grad) {
                *x += y;
            }
            abe += t.abe / batch.len() as f64;
        }
        let _ = opt.step(&gbar, abe);
    });

    // Force segment.
    let ((), force_launches) = kernel::count_region(|| {
        let n_groups = 4;
        let mut grads = vec![vec![0.0; n_params]; n_groups];
        let mut abes = vec![0.0; n_groups];
        for &i in batch {
            let frame = &s.train.frames[i];
            let pass = model.forward(frame);
            let forces = model.forces(&pass);
            let ts = force_targets_with(&model, &pass, &forces, frame, n_groups, cfg.backend);
            for (k, t) in ts.iter().enumerate() {
                for (x, y) in grads[k].iter_mut().zip(&t.grad) {
                    *x += y;
                }
                abes[k] += t.abe / batch.len() as f64;
            }
        }
        for k in 0..n_groups {
            let _ = opt.step(&grads[k], abes[k]);
        }
    });
    kernel::set_fusion_enabled(false);
    (energy_launches, force_launches)
}

fn main() {
    let args = Args::parse();
    let sys = args.systems_or(&[PaperSystem::Al])[0];
    let scale = args.gen_scale(8);
    let bs = args.batch.unwrap_or(8);
    let s = setup(sys, &scale, args.model_scale(), args.seed);
    let batch: Vec<usize> = (0..bs.min(s.train.len())).collect();

    println!("# Figure 7(b): CUDA-kernel-launch counts per iteration (energy / force updates)");
    println!(
        "# system = {}, bs = {}, model = {:?}\n",
        sys.preset().name,
        batch.len(),
        args.model_scale()
    );

    let configs = [
        Config { name: "baseline (autograd)", backend: Backend::Tape, fused_p: false, fusion: false },
        Config { name: "opt1 (+manual kernels)", backend: Backend::Manual, fused_p: false, fusion: false },
        Config { name: "opt2 (+fusion)", backend: Backend::Manual, fused_p: false, fusion: true },
        Config { name: "opt3 (+P kernel & Pg cache)", backend: Backend::Manual, fused_p: true, fusion: true },
    ];

    let mut t = Table::new(&["config", "energy update", "force update", "total (1E + 4F)"]);
    let mut baseline_total = 0u64;
    for (i, cfg) in configs.iter().enumerate() {
        let (e, f) = measure(&s, &batch, cfg);
        let total = e + f; // the force segment already contains all 4 group updates
        if i == 0 {
            baseline_total = total;
        }
        t.row(&[
            cfg.name.to_string(),
            e.to_string(),
            f.to_string(),
            format!(
                "{total} ({:.0}% of baseline)",
                100.0 * total as f64 / baseline_total as f64
            ),
        ]);
    }
    t.print();
    println!("\n# paper (Fig 7b): 397→174 (energy) and 846→281 (force) launches; 64% fewer overall.");
}
