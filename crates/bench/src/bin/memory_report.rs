//! §5.3 memory accounting — the P-matrix footprint of the paper's
//! 26.6k-parameter network and the fused-vs-unfused peak usage.
//!
//! Paper numbers: blocks {1350, 10240, 9760, 5301} weigh
//! {13.90, 800, 726.76, 214.39} MB; P total 1755 MB; optimized peak
//! 1805 MB vs PyTorch-path theory 3405 MB (2×800 extra); and Naive-EKF
//! would replicate all of it per batch sample.

use dp_bench::{fmt_mb, Args, Table};
use dp_optim::blocks::BlockLayout;
use dp_optim::pmatrix::memory_report;

fn main() {
    let args = Args::parse();
    let bs = args.batch.unwrap_or(32);
    // Single-species paper network layer sizes (embedding [1→25,
    // 25→25, 25→25], fitting [400→50, 50→50, 50→50, 50→1]).
    let layers = [50usize, 650, 650, 20050, 2550, 2550, 51];
    let layout = BlockLayout::from_layer_sizes(&layers, 10240);
    let report = memory_report(&layout);

    println!("# §5.3 memory accounting (paper network, blocksize 10240)\n");
    let mut t = Table::new(&["block", "size", "bytes", "paper block", "paper MB"]);
    let paper_blocks = [(1350usize, 13.90), (10240, 800.0), (9760, 726.76), (5301, 214.39)];
    for (i, (&n, &bytes)) in report
        .block_sizes
        .iter()
        .zip(&report.block_bytes)
        .enumerate()
    {
        let (pn, pmb) = paper_blocks.get(i).copied().unwrap_or((0, 0.0));
        t.row(&[
            format!("P{}", i + 1),
            n.to_string(),
            fmt_mb(bytes),
            pn.to_string(),
            format!("{pmb:.2} MB"),
        ]);
    }
    t.print();

    println!();
    let mut t = Table::new(&["quantity", "this repo", "paper"]);
    t.row(&[
        "resident P (all blocks)".into(),
        fmt_mb(report.total_bytes),
        "1755 MB".into(),
    ]);
    t.row(&[
        "peak, fused update (opt3)".into(),
        fmt_mb(report.fused_peak_bytes),
        "1805 MB (P + weights + intermediates)".into(),
    ]);
    t.row(&[
        "peak, unfused update (framework)".into(),
        fmt_mb(report.unfused_peak_bytes),
        "3405 MB (P + 2×max block)".into(),
    ]);
    t.row(&[
        format!("Naive-EKF P replicas (bs {bs})"),
        fmt_mb(report.total_bytes * bs),
        "unbearable for large batches (§3.3)".into(),
    ]);
    t.print();
    println!("\n# FEKF shares one P across the batch; Naive-EKF multiplies it by bs.");
}
