//! Forward/backward and environment-cache throughput benchmarks.
//!
//! Writes `BENCH_forward.json` (schema in `dp_bench::report`) with two
//! families of records:
//!
//! * per-frame kernels at `DP_POOL_THREADS ∈ {1, 2, 4}` — `env_build`
//!   (neighbour-environment construction, the work the cache removes),
//!   `forward_uncached` vs `forward_cached` (same network, environment
//!   rebuilt vs reused), `forces` and `grad_energy_params`;
//! * end-to-end FEKF training throughput at 1 and 4 threads with the
//!   cache off and on — `fekf_frames_per_s_cache_{off,on}` store
//!   frame-updates per second in the `median_ns` field (the name says
//!   what the number is), plus `env_cache_hit_rate` (0–1) and
//!   `env_cache_misses`. Misses equal to the training-set size mean
//!   every geometry was built exactly once — a steady-state hit rate
//!   of 1 after the first epoch's warm-up.
//!
//! Flags: `--smoke` (fewer samples/epochs, for CI), `--out=DIR`
//! (default `results/bench`).

use deepmd_core::env_cache::{EnvCache, FrameEnv};
use dp_bench::report::{measure, BenchReport};
use dp_mdsim::systems::PaperSystem;
use dp_optim::fekf::FekfConfig;
use dp_train::recipes::{run_fekf, setup, ModelScale};
use dp_train::trainer::TrainConfig;
use std::hint::black_box;
use std::path::PathBuf;

struct Opts {
    smoke: bool,
    out: PathBuf,
}

fn parse_opts() -> Opts {
    let mut o = Opts { smoke: false, out: PathBuf::from("results/bench") };
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            o.smoke = true;
        } else if let Some(v) = arg.strip_prefix("--out=") {
            o.out = PathBuf::from(v);
        } else if arg == "--help" || arg == "-h" {
            eprintln!("flags: --smoke --out=DIR");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag '{arg}' (try --help)");
            std::process::exit(2);
        }
    }
    o
}

const THREADS: &[usize] = &[1, 2, 4];

fn main() {
    let opts = parse_opts();
    let mut rep = BenchReport::new("forward");
    let scale = dp_data::generate::GenScale {
        frames_per_temperature: if opts.smoke { 8 } else { 16 },
        equilibration: 80,
        stride: 4,
    };
    let samples = if opts.smoke { 3 } else { 7 };
    let bs = 16;

    // Per-frame kernels.
    let s = setup(PaperSystem::Al, &scale, ModelScale::Small, 2024);
    let model = &s.model;
    let frame = &s.train.frames[0];
    let n_atoms = frame.types.len();
    let n_params = model.n_params();
    let shape = [n_atoms, n_params];
    for &t in THREADS {
        dp_pool::set_threads(t);
        let (ns, k) = measure(samples, || {
            black_box(FrameEnv::build(&model.cfg, &model.stats, frame));
        });
        rep.push("env_build", &[n_atoms], t, ns, k);
        let (ns, k) = measure(samples, || {
            black_box(model.forward(frame).energy);
        });
        rep.push("forward_uncached", &shape, t, ns, k);
        let cache = EnvCache::new(1);
        let _ = model.forward_with_cache(&cache, 0, frame); // warm the slot
        let (ns, k) = measure(samples, || {
            black_box(model.forward_with_cache(&cache, 0, frame).energy);
        });
        rep.push("forward_cached", &shape, t, ns, k);
        let pass = model.forward(frame);
        let (ns, k) = measure(samples, || {
            black_box(model.forces(&pass));
        });
        rep.push("forces", &shape, t, ns, k);
        let (ns, k) = measure(samples, || {
            black_box(model.grad_energy_params(&pass));
        });
        rep.push("grad_energy_params", &shape, t, ns, k);
        eprintln!("per-frame kernels t={t}: done ({n_atoms} atoms, {n_params} params)");
    }

    // End-to-end FEKF throughput, cache off/on.
    for &t in &[1usize, 4] {
        for cache_on in [false, true] {
            dp_pool::set_threads(t);
            let mut s = setup(PaperSystem::Al, &scale, ModelScale::Small, 2024);
            let n_frames = s.train.len();
            let cfg = TrainConfig {
                batch_size: bs,
                max_epochs: if opts.smoke { 1 } else { 2 },
                eval_frames: 4,
                env_cache: cache_on,
                ..Default::default()
            };
            let out = run_fekf(&mut s, cfg, FekfConfig::default());
            let secs = (out.phases.forward + out.phases.gradient + out.phases.optimizer)
                .as_secs_f64()
                .max(1e-9);
            let fps = out.iterations as f64 * bs as f64 / secs;
            let name = if cache_on {
                "fekf_frames_per_s_cache_on"
            } else {
                "fekf_frames_per_s_cache_off"
            };
            rep.push(name, &[s.model.n_params(), bs], t, fps, out.iterations as usize);
            if cache_on {
                rep.push(
                    "env_cache_hit_rate",
                    &[n_frames],
                    t,
                    out.env_cache.hit_rate(),
                    out.iterations as usize,
                );
                rep.push(
                    "env_cache_misses",
                    &[n_frames],
                    t,
                    out.env_cache.misses as f64,
                    out.iterations as usize,
                );
                assert_eq!(
                    out.env_cache.misses, n_frames as u64,
                    "cache must build each geometry exactly once (zero steady-state rebuilds)"
                );
            }
            eprintln!(
                "fekf t={t} cache={}: {:.1} frames/s ({} iters)",
                if cache_on { "on" } else { "off" },
                fps,
                out.iterations
            );
        }
    }

    dp_pool::set_threads(1);
    let path = opts.out.join("BENCH_forward.json");
    rep.write(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!("wrote {} ({} records)", path.display(), rep.records.len());
}
