//! Ablation: fusiform (Naive-EKF) vs funnel (FEKF) dataflow — the two
//! multi-sample EKF designs of §3.1 / Table 2, quantified.
//!
//! Same batch size, same epoch budget, same data: compare accuracy,
//! wall time, and the `P`-matrix memory footprint. The paper's argument
//! for the funnel: comparable convergence with `1/bs` of the `P`
//! memory (and none of the `P` communication).

use dp_bench::{fmt_mb, fmt_secs, Args, Table};
use dp_mdsim::systems::PaperSystem;
use dp_optim::fekf::{Fekf, FekfConfig};
use dp_optim::naive_ekf::NaiveEkf;
use dp_train::recipes::setup;
use dp_train::trainer::{TrainConfig, Trainer};

fn main() {
    let args = Args::parse();
    let sys = args.systems_or(&[PaperSystem::Al])[0];
    let scale = args.gen_scale(60);
    let bs = args.batch.unwrap_or(8);
    let epochs = args.epochs.unwrap_or(4);

    println!("# Ablation: fusiform (Naive-EKF) vs funnel (FEKF) dataflow");
    println!(
        "# system = {}, bs = {bs}, {} epochs, {} frames/temperature, model = {:?}\n",
        sys.preset().name,
        epochs,
        scale.frames_per_temperature,
        args.model_scale()
    );

    let cfg = TrainConfig { batch_size: bs, max_epochs: epochs, eval_frames: 48, ..Default::default() };

    // Funnel (FEKF).
    let mut s = setup(sys, &scale, args.model_scale(), args.seed);
    let mut fekf = Fekf::new(&s.model.layer_sizes(), bs, FekfConfig::default());
    let fekf_mem = fekf.core().p.memory_bytes();
    let out_f = Trainer::new(cfg).train_fekf(&mut s.model, &mut fekf, &s.train, Some(&s.test));

    // Fusiform (Naive-EKF).
    let mut s = setup(sys, &scale, args.model_scale(), args.seed);
    let mut naive = NaiveEkf::new(&s.model.layer_sizes(), 10240, bs, None, true);
    let naive_mem = naive.p_memory_bytes();
    let out_n = Trainer::new(cfg).train_naive_ekf(&mut s.model, &mut naive, &s.train, Some(&s.test));

    let mut t = Table::new(&[
        "dataflow",
        "train RMSE (E+F)",
        "test RMSE (E+F)",
        "wall time",
        "P memory",
        "P communicated?",
    ]);
    t.row(&[
        "funnel (FEKF)".into(),
        format!("{:.4}", out_f.final_train.combined()),
        format!("{:.4}", out_f.final_test.unwrap().combined()),
        fmt_secs(out_f.wall_s),
        fmt_mb(fekf_mem),
        "no (replicated)".into(),
    ]);
    t.row(&[
        "fusiform (Naive-EKF)".into(),
        format!("{:.4}", out_n.final_train.combined()),
        format!("{:.4}", out_n.final_test.unwrap().combined()),
        fmt_secs(out_n.wall_s),
        format!("{} ({}x)", fmt_mb(naive_mem), bs),
        "would be required".into(),
    ]);
    t.print();
    println!("\n# §3.1/§3.3: the funnel's early reduction keeps one shared P; the fusiform");
    println!("# design needs bs× the memory and would have to move P in distributed runs.");
}
