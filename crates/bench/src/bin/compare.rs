//! Diagnostic: per-epoch RMSE trajectories of Adam / RLEKF / FEKF on
//! one system (not part of the experiment suite).

use dp_bench::Args;
use dp_data::generate::GenScale;
use dp_mdsim::systems::PaperSystem;
use dp_optim::fekf::FekfConfig;
use dp_train::recipes::{run_adam, run_fekf, run_rlekf, setup};
use dp_train::trainer::TrainConfig;

fn main() {
    let args = Args::parse();
    let sys = args.systems.clone().map(|v| v[0]).unwrap_or(PaperSystem::Al);
    let frames = args.frames.unwrap_or(40);
    let epochs = args.epochs.unwrap_or(10);
    let bs = args.batch.unwrap_or(32);
    let scale = GenScale { frames_per_temperature: frames, equilibration: 80, stride: 4 };

    let cfg = TrainConfig { batch_size: bs, max_epochs: epochs, eval_frames: 48, ..Default::default() };

    let mut s = setup(sys, &scale, args.model_scale(), args.seed);
    let fekf = run_fekf(&mut s, cfg, FekfConfig::default());
    let mut s = setup(sys, &scale, args.model_scale(), args.seed);
    let adam = run_adam(&mut s, TrainConfig { batch_size: 1, ..cfg }, false);
    let mut s = setup(sys, &scale, args.model_scale(), args.seed);
    let rlekf = run_rlekf(&mut s, TrainConfig { batch_size: 1, max_epochs: (epochs / 2).max(1), ..cfg }, 10240);

    println!("epoch | Adam bs1 (E,F) | RLEKF bs1 (E,F) | FEKF bs{bs} (E,F)");
    for e in 0..epochs {
        let get = |h: &dp_train::metrics::TrainHistory| {
            h.epochs
                .get(e)
                .map(|r| format!("{:.4},{:.4}", r.train.energy_rmse, r.train.force_rmse))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:>5} | {:>16} | {:>16} | {:>16}",
            e + 1,
            get(&adam.history),
            get(&rlekf.history),
            get(&fekf.history)
        );
    }
    println!(
        "wall: adam {:.1}s rlekf {:.1}s fekf {:.1}s",
        adam.wall_s, rlekf.wall_s, fekf.wall_s
    );
}
