//! Table 1 — Adam-based DeePMD convergence under different training
//! batch sizes.
//!
//! Protocol (paper §1): train Adam with batch size 1 to its converged
//! Energy RMSE; then train batch sizes 32 and 64 (learning rate scaled
//! by √bs, the paper's protocol) and count the epochs needed to reach
//! the *same* Energy RMSE. The paper observes an epoch growth of
//! ~12–25× from bs 1 → 32 and ~2× from 32 → 64; "-" marks runs that
//! never reach the target within the cap.

use dp_bench::{Args, Table};
use dp_mdsim::systems::PaperSystem;
use dp_train::recipes::{run_adam, setup};
use dp_train::trainer::TrainConfig;

fn main() {
    let args = Args::parse();
    let systems = args.systems_or(&[PaperSystem::Al]);
    let scale = args.gen_scale(32);
    let budget = args.epochs.unwrap_or(if args.paper_scale { 60 } else { 40 });
    let cap = budget * 10;

    println!("# Table 1: Adam convergence vs batch size (√bs LR scaling)");
    println!(
        "# scale: {} frames/temperature, model = {:?}, bs-1 budget = {budget} epochs, cap = {cap}\n",
        scale.frames_per_temperature,
        args.model_scale()
    );
    let mut table = Table::new(&[
        "System",
        "Energy RMSE (eV)",
        "bs 1",
        "bs 32",
        "bs 64",
        "growth 32/1",
        "growth 64/32",
    ]);

    for sys in systems {
        // Reference: batch size 1.
        let mut s = setup(sys, &scale, args.model_scale(), args.seed);
        let cfg1 = TrainConfig {
            batch_size: 1,
            max_epochs: budget,
            eval_frames: 48,
            ..Default::default()
        };
        let out1 = run_adam(&mut s, cfg1, false);
        // Tight accuracy bar: the best energy RMSE the bs-1 run ever
        // reached (+2% tolerance) — matching the paper's "converged
        // Energy RMSE" protocol.
        let best = out1
            .history
            .epochs
            .iter()
            .map(|r| r.train.energy_rmse)
            .fold(f64::INFINITY, f64::min);
        let target_e = best * 1.02;
        let epochs1 = out1
            .history
            .epochs
            .iter()
            .find(|r| r.train.energy_rmse <= target_e)
            .map(|r| r.epoch)
            .unwrap_or(budget);

        let epochs_at = |bs: usize| -> Option<usize> {
            let mut s = setup(sys, &scale, args.model_scale(), args.seed);
            let cfg = TrainConfig {
                batch_size: bs,
                max_epochs: cap,
                eval_frames: 48,
                ..Default::default()
            };
            let out = run_adam(&mut s, cfg, true);
            out.history
                .epochs
                .iter()
                .find(|r| r.train.energy_rmse <= target_e)
                .map(|r| r.epoch)
        };
        let e32 = epochs_at(32);
        let e64 = epochs_at(64);
        let show = |e: Option<usize>| e.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
        let ratio = |a: Option<usize>, b: usize| {
            a.map(|v| format!("{:.1}x", v as f64 / b as f64))
                .unwrap_or_else(|| "-".into())
        };
        let ratio2 = |a: Option<usize>, b: Option<usize>| match (a, b) {
            (Some(x), Some(y)) if y > 0 => format!("{:.1}x", x as f64 / y as f64),
            _ => "-".into(),
        };
        table.row(&[
            sys.preset().name.to_string(),
            format!("{:.4}", target_e),
            epochs1.to_string(),
            show(e32),
            show(e64),
            ratio(e32, epochs1),
            ratio2(e64, e32),
        ]);
    }
    table.print();
    println!("\n# paper (Table 1): bs-32 needs 12.1x–25.1x the epochs of bs-1; bs-64 ≈ 2x bs-32.");
}
