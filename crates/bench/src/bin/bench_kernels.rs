//! Machine-readable kernel benchmarks for the perf trajectory.
//!
//! Sweeps `DP_POOL_THREADS ∈ {1, 2, 4}` (via `dp_pool::set_threads`) over
//! the hot-path kernels and writes three JSON reports (schema in
//! `dp_bench::report`):
//!
//! * `BENCH_gemm.json`    — square GEMM and the tiled GEMV under the
//!   active backend, plus a per-backend `gemm/<backend>` /
//!   `gemv/<backend>` sweep of every backend this CPU supports
//! * `BENCH_p_update.json`— KF block `q = P·g` and the fused `P` update
//! * `BENCH_train_iter.json` — end-to-end FEKF iteration phase times
//!
//! Every report is stamped with the resolved `DP_BACKEND` and detected
//! CPU features (see `dp_bench::report`); an unsupported `DP_BACKEND`
//! exits 2 before any measurement.
//!
//! Flags: `--smoke` (one small shape per report, for CI),
//! `--paper` (adds the 10240 `P` block — ~800 MB resident),
//! `--out=DIR` (default `results/bench`).

use dp_bench::report::{measure, BenchReport};
use dp_mdsim::systems::PaperSystem;
use dp_optim::fekf::FekfConfig;
use dp_optim::pmatrix::BlockP;
use dp_optim::BlockLayout;
use dp_tensor::Mat;
use dp_train::recipes::{run_fekf, setup, ModelScale};
use dp_train::trainer::TrainConfig;
use std::path::PathBuf;

struct Opts {
    smoke: bool,
    paper: bool,
    out: PathBuf,
}

fn parse_opts() -> Opts {
    let mut o = Opts { smoke: false, paper: false, out: PathBuf::from("results/bench") };
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            o.smoke = true;
        } else if arg == "--paper" {
            o.paper = true;
        } else if let Some(v) = arg.strip_prefix("--out=") {
            o.out = PathBuf::from(v);
        } else if arg == "--help" || arg == "-h" {
            eprintln!("flags: --smoke --paper --out=DIR");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag '{arg}' (try --help)");
            std::process::exit(2);
        }
    }
    o
}

const THREADS: &[usize] = &[1, 2, 4];

fn det_mat(rows: usize, cols: usize, salt: u64) -> Mat {
    Mat::from_fn(rows, cols, |r, c| {
        (((r * 1315423911 + c * 2654435761 + salt as usize) % 1000) as f64) * 1e-3 - 0.5
    })
}

fn det_vec(n: usize, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|i| (((i * 2246822519 + salt as usize) % 1000) as f64) * 1e-3 - 0.5)
        .collect()
}

fn bench_gemm(opts: &Opts) -> BenchReport {
    let mut rep = BenchReport::new("gemm");
    let gemm_sizes: &[usize] = if opts.smoke { &[128] } else { &[32, 128, 512, 2048] };
    let gemv_sizes: &[usize] = if opts.smoke { &[1024] } else { &[1024, 4096] };
    let samples = if opts.smoke { 3 } else { 7 };
    for &n in gemm_sizes {
        let a = det_mat(n, n, 1);
        let b = det_mat(n, n, 2);
        let mut c = Mat::zeros(n, n);
        for &t in THREADS {
            dp_pool::set_threads(t);
            let s = if n >= 2048 { 3 } else { samples };
            let (ns, k) = measure(s, || a.matmul_into(&b, &mut c, 0.0));
            rep.push("gemm", &[n, n, n], t, ns, k);
            eprintln!("gemm {n}x{n}x{n} t={t}: {:.3} ms", ns / 1e6);
        }
    }
    for &n in gemv_sizes {
        let a = det_mat(n, n, 3);
        let x = det_vec(n, 4);
        let mut y = vec![0.0; n];
        for &t in THREADS {
            dp_pool::set_threads(t);
            let (ns, k) = measure(samples, || a.matvec_into(&x, &mut y));
            rep.push("gemv", &[n, n], t, ns, k);
            eprintln!("gemv {n}x{n} t={t}: {:.3} ms", ns / 1e6);
        }
    }

    // Per-backend side-by-side sweep at t = 1: every backend this CPU
    // supports over the same operands, so one committed file carries the
    // scalar-vs-SIMD ratio (the plain "gemm"/"gemv" records above cover
    // the thread sweep under the active backend).
    let cmp_gemm: &[usize] = if opts.smoke { &[128] } else { &[128, 512] };
    let cmp_gemv: &[usize] = if opts.smoke { &[1024] } else { &[1024, 4096] };
    dp_pool::set_threads(1);
    for kind in dp_tensor::backend::available() {
        for &n in cmp_gemm {
            let a = det_mat(n, n, 1);
            let b = det_mat(n, n, 2);
            let mut c = Mat::zeros(n, n);
            let (ns, k) = dp_tensor::backend::with_backend(kind, || {
                measure(samples, || a.matmul_into(&b, &mut c, 0.0))
            })
            .expect("backend came from available()");
            rep.push(&format!("gemm/{}", kind.name()), &[n, n, n], 1, ns, k);
            eprintln!("gemm/{} {n}x{n}x{n} t=1: {:.3} ms", kind.name(), ns / 1e6);
        }
        for &n in cmp_gemv {
            let a = det_mat(n, n, 3);
            let x = det_vec(n, 4);
            let mut y = vec![0.0; n];
            let (ns, k) = dp_tensor::backend::with_backend(kind, || {
                measure(samples, || a.matvec_into(&x, &mut y))
            })
            .expect("backend came from available()");
            rep.push(&format!("gemv/{}", kind.name()), &[n, n], 1, ns, k);
            eprintln!("gemv/{} {n}x{n} t=1: {:.3} ms", kind.name(), ns / 1e6);
        }
    }
    rep
}

fn bench_p_update(opts: &Opts) -> BenchReport {
    let mut rep = BenchReport::new("p_update");
    let mut sizes: Vec<usize> = if opts.smoke { vec![512] } else { vec![512, 2048, 4096] };
    if opts.paper {
        sizes.push(10240);
    }
    let samples = if opts.smoke { 3 } else { 7 };
    for &n in &sizes {
        let layout = BlockLayout::from_layer_sizes(&[n], n);
        let g = det_vec(n, 5);
        let mut q = vec![0.0; n];
        for &t in THREADS {
            dp_pool::set_threads(t);
            let p = BlockP::identity(&layout);
            let (ns, k) = measure(samples, || p.matvec_into(0, &g, &mut q));
            rep.push("p_matvec", &[n], t, ns, k);
            eprintln!("p_matvec n={n} t={t}: {:.3} ms", ns / 1e6);
            let mut p = BlockP::identity(&layout);
            p.matvec_into(0, &g, &mut q);
            let s = if n >= 10240 { 3 } else { samples };
            // a, λ chosen so repeated updates stay numerically tame.
            let (ns, k) = measure(s, || p.update_fused(0, &q, 1e-6, 0.9999));
            rep.push("p_update_fused", &[n], t, ns, k);
            eprintln!("p_update_fused n={n} t={t}: {:.3} ms", ns / 1e6);
        }
    }
    rep
}

fn bench_train_iter(opts: &Opts) -> BenchReport {
    let mut rep = BenchReport::new("train_iter");
    let scale = dp_data::generate::GenScale {
        frames_per_temperature: if opts.smoke { 8 } else { 16 },
        equilibration: 80,
        stride: 4,
    };
    let bs = 16;
    for &t in THREADS {
        dp_pool::set_threads(t);
        let mut s = setup(PaperSystem::Al, &scale, ModelScale::Small, 2024);
        let n_frames = s.train.len();
        let n_params = s.model.n_params();
        let cfg = TrainConfig {
            batch_size: bs,
            max_epochs: 1,
            eval_frames: 4,
            env_cache: true,
            ..Default::default()
        };
        let out = run_fekf(&mut s, cfg, FekfConfig::default());
        let iters = out.iterations.max(1) as f64;
        let per = |d: std::time::Duration| d.as_secs_f64() * 1e9 / iters;
        let shape = [n_params, bs];
        rep.push("fekf_iter_forward", &shape, t, per(out.phases.forward), out.iterations as usize);
        rep.push("fekf_iter_gradient", &shape, t, per(out.phases.gradient), out.iterations as usize);
        rep.push("fekf_iter_kf", &shape, t, per(out.phases.optimizer), out.iterations as usize);
        let total =
            per(out.phases.forward) + per(out.phases.gradient) + per(out.phases.optimizer);
        rep.push("fekf_iter_total", &shape, t, total, out.iterations as usize);
        // Frames/s and cache effectiveness (the median_ns field holds the
        // value the record name describes, not a time).
        let fps = out.iterations as f64 * bs as f64 / (out.phases.total().as_secs_f64()).max(1e-9);
        rep.push("fekf_frames_per_s", &shape, t, fps, out.iterations as usize);
        rep.push("env_cache_hit_rate", &[n_frames], t, out.env_cache.hit_rate(), out.iterations as usize);
        rep.push("env_cache_misses", &[n_frames], t, out.env_cache.misses as f64, out.iterations as usize);
        eprintln!(
            "train_iter t={t}: {:.1} ms/iter, {fps:.1} frames/s, hit rate {:.3} ({} iters)",
            total / 1e6,
            out.env_cache.hit_rate(),
            out.iterations
        );
    }
    rep
}

fn main() {
    let opts = parse_opts();
    // Fail loudly before measuring anything: a bench run under a
    // misspelled or unsupported DP_BACKEND must not produce a file.
    let backend = match dp_tensor::backend::try_global_kind() {
        Ok(k) => k,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "bench_kernels: backend {backend} (available: {:?})",
        dp_tensor::backend::available()
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
    );
    let reports = [
        ("BENCH_gemm.json", bench_gemm(&opts)),
        ("BENCH_p_update.json", bench_p_update(&opts)),
        ("BENCH_train_iter.json", bench_train_iter(&opts)),
    ];
    dp_pool::set_threads(1);
    for (file, rep) in &reports {
        let path = opts.out.join(file);
        rep.write(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("wrote {} ({} records)", path.display(), rep.records.len());
    }
}
