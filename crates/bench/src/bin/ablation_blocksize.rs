//! Ablation: the P-matrix blocksize (the RLEKF gather/split threshold,
//! paper default 10240).
//!
//! Smaller blocks mean a cruder curvature approximation (more
//! cross-layer correlations discarded) but cheaper updates:
//! per-update cost is `Σ n_b²`, which shrinks as blocks shrink. This
//! sweep measures both sides of the trade on one system.

use dp_bench::{fmt_mb, fmt_secs, Args, Table};
use dp_mdsim::systems::PaperSystem;
use dp_optim::blocks::BlockLayout;
use dp_optim::fekf::{Fekf, FekfConfig};
use dp_train::recipes::setup;
use dp_train::trainer::{TrainConfig, Trainer};

fn main() {
    let args = Args::parse();
    let sys = args.systems_or(&[PaperSystem::Al])[0];
    let scale = args.gen_scale(60);
    let bs = args.batch.unwrap_or(8);
    let epochs = args.epochs.unwrap_or(4);

    println!("# Ablation: P blocksize (gather/split threshold)");
    println!(
        "# system = {}, bs = {bs}, {} epochs, model = {:?}\n",
        sys.preset().name,
        epochs,
        args.model_scale()
    );

    let probe = setup(sys, &scale, args.model_scale(), args.seed);
    let layer_sizes = probe.model.layer_sizes();
    let n_params = probe.model.n_params();
    drop(probe);

    let mut t = Table::new(&[
        "blocksize",
        "#blocks",
        "P memory",
        "train RMSE (E+F)",
        "KF time share",
        "wall time",
    ]);
    for &blocksize in &[64usize, 512, 2048, usize::MAX] {
        let effective = blocksize.min(n_params);
        let layout = BlockLayout::from_layer_sizes(&layer_sizes, effective);
        let mut s = setup(sys, &scale, args.model_scale(), args.seed);
        let mut opt = Fekf::new(
            &layer_sizes,
            bs,
            FekfConfig { blocksize: effective, ..FekfConfig::default() },
        );
        let p_mem = opt.core().p.memory_bytes();
        let cfg = TrainConfig {
            batch_size: bs,
            max_epochs: epochs,
            eval_frames: 48,
            ..Default::default()
        };
        let out = Trainer::new(cfg).train_fekf(&mut s.model, &mut opt, &s.train, Some(&s.test));
        let kf_share = out.phases.optimizer.as_secs_f64() / out.phases.total().as_secs_f64();
        t.row(&[
            if blocksize == usize::MAX { "full".into() } else { blocksize.to_string() },
            layout.n_blocks().to_string(),
            fmt_mb(p_mem),
            format!("{:.4}", out.final_train.combined()),
            format!("{:.0}%", kf_share * 100.0),
            fmt_secs(out.wall_s),
        ]);
    }
    t.print();
    println!("\n# larger blocks: richer curvature (better accuracy per update) but quadratic");
    println!("# per-block cost and memory — the paper picks 10240 as the sweet spot (§4).");
}
