//! Table 4 — convergence ratio of 32-sample-minibatch FEKF against
//! single-sample-minibatch Adam, with train/test RMSE.
//!
//! Protocol: Adam bs-1 trains for a fixed epoch budget; its converged
//! combined RMSE (energy + force) becomes the accuracy bar. FEKF bs-32
//! then trains to that bar; the **convergence ratio** is FEKF epochs /
//! Adam epochs (paper: 0.071–0.226, i.e. FEKF needs ≲ a quarter of the
//! epochs). The RMSE columns print `train/test` so the generalization
//! gap is visible (paper: FEKF's test RMSE beats Adam's).

use dp_bench::{Args, Table};
use dp_mdsim::systems::PaperSystem;
use dp_optim::fekf::FekfConfig;
use dp_train::recipes::{run_adam, run_fekf, setup};
use dp_train::trainer::TrainConfig;

fn main() {
    let args = Args::parse();
    let systems = args.systems_or(&[PaperSystem::Al, PaperSystem::NaCl]);
    let scale = args.gen_scale(100);
    let budget = args.epochs.unwrap_or(if args.paper_scale { 40 } else { 20 });
    let bs = args.batch.unwrap_or(if args.paper_scale { 32 } else { 8 });

    println!("# Table 4: convergence ratio of FEKF bs-{bs} vs Adam bs-1");
    // quick note: bs is scaled with the dataset (paper: bs 32 on 10k-70k frames).
    println!(
        "# scale: {} frames/temperature, model = {:?}, Adam budget = {budget} epochs\n",
        scale.frames_per_temperature,
        args.model_scale()
    );
    let mut t = Table::new(&[
        "System",
        "Adam epochs",
        "conv. ratio",
        "Adam RMSE train/test",
        "FEKF RMSE train/test",
    ]);
    for sys in systems {
        let mut s = setup(sys, &scale, args.model_scale(), args.seed);
        let cfg1 = TrainConfig {
            batch_size: 1,
            max_epochs: budget,
            eval_frames: 48,
            ..Default::default()
        };
        let adam = run_adam(&mut s, cfg1, false);
        let adam_test = adam.final_test.unwrap();
        // Adam's converged accuracy: the best combined RMSE over the
        // budget; its converged epoch is the first within 5% of it.
        let target = adam
            .history
            .epochs
            .iter()
            .map(|r| r.train.combined())
            .fold(f64::INFINITY, f64::min);
        let adam_epochs = adam
            .history
            .epochs
            .iter()
            .find(|r| r.train.combined() <= target * 1.05)
            .map(|r| r.epoch)
            .unwrap_or(budget);

        let mut s2 = setup(sys, &scale, args.model_scale(), args.seed);
        let cfg_f = TrainConfig {
            batch_size: bs,
            max_epochs: budget * 2,
            target: Some(target * 1.05),
            eval_frames: 48,
            ..Default::default()
        };
        let fekf = run_fekf(&mut s2, cfg_f, FekfConfig::default());
        let fekf_test = fekf.final_test.unwrap();
        let ratio = fekf.epochs_run as f64 / adam_epochs as f64;
        t.row(&[
            sys.preset().name.to_string(),
            adam_epochs.to_string(),
            format!("{ratio:.3}{}", if fekf.converged { "" } else { " (cap)" }),
            format!(
                "{:.4}/{:.4}",
                adam.final_train.combined(),
                adam_test.combined()
            ),
            format!(
                "{:.4}/{:.4}",
                fekf.final_train.combined(),
                fekf_test.combined()
            ),
        ]);
    }
    t.print();
    println!("\n# paper (Table 4): convergence ratios 0.071–0.226; FEKF test RMSE ≤ Adam test RMSE.");
}
