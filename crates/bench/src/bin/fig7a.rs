//! Figure 7(a) — end-to-end training time of Adam, RLEKF, FEKF and the
//! system-optimized FEKF at a common accuracy.
//!
//! Protocol (mirroring §5.2 "The training wall clock time … is measured
//! under the accuracy referring Table 4"): Adam bs-1 trains for a fixed
//! budget; its best combined RMSE sets the accuracy bar. Every
//! optimizer then trains to the bar and reports wall-clock time:
//!
//! * Adam bs-1 — time at which its own history first met the bar,
//! * RLEKF bs-1 — the paper's 1× baseline,
//! * FEKF *baseline* — tape-autograd derivatives + unfused P (the
//!   framework path before §3.4),
//! * FEKF *optimized* — handwritten kernels + fused P + fusion.
//!
//! Quick mode uses the Medium network so the Kalman `P` update
//! dominates per-sample cost — the regime in which the paper's 11.61×
//! (FEKF vs RLEKF) and 3.25× (optimizations) speedups live.

use dp_bench::{fmt_secs, Args, Table};
use dp_mdsim::systems::PaperSystem;
use dp_optim::fekf::FekfConfig;
use dp_tensor::kernel;
use dp_train::recipes::{run_adam, run_fekf, run_rlekf, setup, ModelScale};
use dp_train::targets::Backend;
use dp_train::trainer::TrainConfig;

fn main() {
    let args = Args::parse();
    let systems = args.systems_or(&[PaperSystem::Al]);
    let scale = args.gen_scale(60);
    let adam_budget = args.epochs.unwrap_or(30);
    let bs = args.batch.unwrap_or(16);
    let model_scale = if args.paper_scale { ModelScale::Paper } else { ModelScale::Medium };

    println!("# Figure 7(a): end-to-end training time at a common accuracy");
    println!(
        "# scale: {} frames/temperature, model = {:?}, Adam budget = {adam_budget} epochs, FEKF bs = {bs}\n",
        scale.frames_per_temperature, model_scale
    );
    let mut t = Table::new(&[
        "System",
        "Adam bs1",
        "RLEKF bs1",
        "FEKF (baseline)",
        "FEKF (optimized)",
        "RLEKF/FEKF-opt",
        "baseline/opt",
    ]);

    for sys in systems {
        // Accuracy bar: Adam's best combined RMSE over its budget.
        let mut s = setup(sys, &scale, model_scale, args.seed);
        let adam = run_adam(
            &mut s,
            TrainConfig {
                batch_size: 1,
                max_epochs: adam_budget,
                eval_frames: 32,
                ..Default::default()
            },
            false,
        );
        let best = adam
            .history
            .epochs
            .iter()
            .map(|r| r.train.combined())
            .fold(f64::INFINITY, f64::min);
        let target = best * 1.05;
        let adam_time = adam
            .history
            .epochs
            .iter()
            .find(|r| r.train.combined() <= target)
            .map(|r| r.wall_s)
            .unwrap_or(adam.wall_s);

        let to_target = TrainConfig {
            batch_size: bs,
            max_epochs: 60,
            target: Some(target),
            eval_frames: 32,
            eval_every: 5,
            ..Default::default()
        };

        // RLEKF to the bar (mid-epoch checks every 40 samples).
        let mut s = setup(sys, &scale, model_scale, args.seed);
        let rlekf = run_rlekf(
            &mut s,
            TrainConfig { batch_size: 1, max_epochs: 6, eval_every: 40, ..to_target },
            10240,
        );

        // FEKF optimized.
        kernel::set_fusion_enabled(true);
        let mut s = setup(sys, &scale, model_scale, args.seed);
        let fekf_opt = run_fekf(&mut s, to_target, FekfConfig::default());

        // FEKF baseline: autograd derivatives + unfused P, no fusion.
        kernel::set_fusion_enabled(false);
        let mut s = setup(sys, &scale, model_scale, args.seed);
        let fekf_base = run_fekf(
            &mut s,
            TrainConfig { backend: Backend::Tape, max_epochs: 8, eval_every: 2, ..to_target },
            FekfConfig { fused: false, ..FekfConfig::default() },
        );

        let mark = |t: f64, conv: bool| {
            if conv {
                fmt_secs(t)
            } else {
                format!(">{}", fmt_secs(t))
            }
        };
        t.row(&[
            sys.preset().name.to_string(),
            fmt_secs(adam_time),
            mark(rlekf.wall_s, rlekf.converged),
            mark(fekf_base.wall_s, fekf_base.converged),
            mark(fekf_opt.wall_s, fekf_opt.converged),
            format!("{:.1}x", rlekf.wall_s / fekf_opt.wall_s),
            format!("{:.1}x", fekf_base.wall_s / fekf_opt.wall_s),
        ]);
    }
    t.print();
    println!("\n# paper (Fig 7a): FEKF vs RLEKF avg 11.61x; system optimizations a further 3.25x;");
    println!("# '>' marks runs that hit their epoch cap before reaching the bar.");
}
