//! MD scaling benchmark for the domain-decomposed engine (`dp-domain`).
//!
//! Replicates the paper's 108-atom Cu cell to supercells of 10³–10⁶
//! atoms and writes `BENCH_md_scale.json` (schema in
//! `dp_bench::report`) with three record families:
//!
//! * `nl_celllist` / `nl_naive` — linked-cell vs `O(N²)` neighbour
//!   construction, shape `[n_atoms]`. The acceptance bar for this PR is
//!   a ≥ 10× cell-list win at ≥ 10⁵ atoms; the two paths are bitwise
//!   interchangeable (dp-verify `domain` family), so this is a pure
//!   speed comparison.
//! * `md_step` — one velocity-Verlet NVE step (halo exchange +
//!   migration + Sutton–Chen + reductions) under the decomposed engine,
//!   shape `[n_atoms, gx, gy, gz]`, swept over domain grids ×
//!   `dp_pool::set_threads {1, 2, 4}`.
//! * `md_atoms_per_s` / `md_ns_per_day` — the same runs expressed as
//!   throughput (the `median_ns` field holds the named value, following
//!   the `fekf_frames_per_s` convention).
//!
//! Flags: `--smoke` (one small size, for CI), `--paper` (adds the
//! 10⁶-atom supercell — ~2 GB resident), `--out=DIR` (default
//! `results/bench`).

use dp_bench::report::{measure, BenchReport};
use dp_domain::{DecomposedMd, LocalSuttonChen};
use dp_mdsim::neighbor::NeighborList;
use dp_mdsim::potential::sutton_chen::SuttonChenParams;
use dp_mdsim::state::State;
use dp_mdsim::systems::PaperSystem;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

struct Opts {
    smoke: bool,
    paper: bool,
    out: PathBuf,
}

fn parse_opts() -> Opts {
    let mut o = Opts { smoke: false, paper: false, out: PathBuf::from("results/bench") };
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            o.smoke = true;
        } else if arg == "--paper" {
            o.paper = true;
        } else if let Some(v) = arg.strip_prefix("--out=") {
            o.out = PathBuf::from(v);
        } else if arg == "--help" || arg == "-h" {
            eprintln!("flags: --smoke --paper --out=DIR");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag '{arg}' (try --help)");
            std::process::exit(2);
        }
    }
    o
}

const CU_CUTOFF: f64 = 4.5;
const THREADS: &[usize] = &[1, 2, 4];
const DT_FS: f64 = 1.0;

/// Replicated, jittered, thermalized Cu supercell (108·∏reps atoms).
fn cu_state(reps: [usize; 3], seed: u64) -> State {
    let (mut state, _) = PaperSystem::Cu.replicate(reps[0], reps[1], reps[2]);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    state.jitter_positions(0.05, &mut rng);
    state.init_velocities(300.0, &mut rng);
    state
}

fn bench_neighbor(rep: &mut BenchReport, opts: &Opts) {
    let mut sizes: Vec<[usize; 3]> = if opts.smoke {
        vec![[3, 3, 3]] // 2 916 atoms
    } else {
        vec![[3, 3, 3], [5, 5, 5], [10, 10, 10]] // up to 108 000 atoms
    };
    if opts.paper {
        sizes.push([21, 21, 21]); // 1 000 188 atoms
    }
    for &reps in &sizes {
        let state = cu_state(reps, 42);
        let n = state.n_atoms();
        let samples = if n >= 100_000 { 2 } else { 5 };
        let (ns_fast, k) = measure(samples, || {
            std::hint::black_box(NeighborList::build(&state.cell, &state.pos, CU_CUTOFF));
        });
        rep.push("nl_celllist", &[n], 1, ns_fast, k);
        eprintln!("nl_celllist n={n}: {:.3} ms", ns_fast / 1e6);
        // The O(N²) scan is the differential oracle, not a production
        // path: one sample at the big sizes, skipped entirely at 10⁶
        // (it would run for hours without telling us anything new).
        if n <= 200_000 {
            let samples = if n >= 50_000 { 1 } else { 3 };
            let (ns_naive, k) = measure(samples, || {
                std::hint::black_box(NeighborList::build_naive(&state.cell, &state.pos, CU_CUTOFF));
            });
            rep.push("nl_naive", &[n], 1, ns_naive, k);
            eprintln!(
                "nl_naive    n={n}: {:.3} ms ({:.1}x slower than cell list)",
                ns_naive / 1e6,
                ns_naive / ns_fast
            );
        }
    }
}

fn bench_md_step(rep: &mut BenchReport, opts: &Opts) {
    // (replication, domain grids): grids are capped by useful domain
    // counts, not by the engine (any grid is valid at these box sizes).
    let mut cases: Vec<([usize; 3], Vec<[usize; 3]>)> = if opts.smoke {
        vec![([3, 3, 3], vec![[1, 1, 1], [2, 2, 1]])]
    } else {
        vec![
            ([5, 5, 5], vec![[1, 1, 1], [2, 2, 2]]),
            ([10, 10, 10], vec![[1, 1, 1], [2, 2, 2], [4, 2, 2]]),
        ]
    };
    if opts.paper {
        cases.push(([21, 21, 21], vec![[2, 2, 2], [4, 4, 4]]));
    }
    let samples = if opts.smoke { 3 } else { 5 };
    for (reps, grids) in &cases {
        let state = cu_state(*reps, 7);
        let n = state.n_atoms();
        for &dims in grids {
            for &t in THREADS {
                dp_pool::set_threads(t);
                let pot = Box::new(LocalSuttonChen::new(SuttonChenParams::copper(), CU_CUTOFF));
                let mut eng = DecomposedMd::new(&state, pot, dims).unwrap_or_else(|e| {
                    eprintln!("error: decompose {n} atoms on grid {dims:?}: {e}");
                    std::process::exit(1);
                });
                let samples = if n >= 500_000 { 2 } else { samples };
                let (ns, k) = measure(samples, || {
                    eng.step_nve(DT_FS);
                });
                let shape = [n, dims[0], dims[1], dims[2]];
                rep.push("md_step", &shape, t, ns, k);
                let sec = ns / 1e9;
                let atoms_per_s = n as f64 / sec;
                let ns_per_day = DT_FS * 1e-6 * 86_400.0 / sec;
                rep.push("md_atoms_per_s", &shape, t, atoms_per_s, k);
                rep.push("md_ns_per_day", &shape, t, ns_per_day, k);
                eprintln!(
                    "md_step n={n} grid {dims:?} t={t}: {:.3} ms/step, {:.2e} atoms/s, \
                     {ns_per_day:.2} ns/day",
                    ns / 1e6,
                    atoms_per_s
                );
            }
        }
    }
    dp_pool::set_threads(1);
}

fn main() {
    let opts = parse_opts();
    let mut rep = BenchReport::new("md_scale");
    bench_neighbor(&mut rep, &opts);
    bench_md_step(&mut rep, &opts);
    let path = opts.out.join("BENCH_md_scale.json");
    rep.write(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!("wrote {} ({} records)", path.display(), rep.records.len());
}
