//! Figure 4 — effect of the quasi-learning-rate factor on the energy
//! convergence of FEKF.
//!
//! Sweeps the weight-increment factor over {1, √bs, bs} (Eq. 2 and
//! §3.2) and prints the per-epoch Energy-RMSE series. The paper's
//! finding: √bs converges fastest; factor 1 is slow; factor bs
//! overshoots.

use dp_bench::{Args, Table};
use dp_mdsim::systems::PaperSystem;
use dp_optim::fekf::{FekfConfig, QuasiLr};
use dp_train::recipes::{run_fekf, setup};
use dp_train::trainer::TrainConfig;

fn main() {
    let args = Args::parse();
    let sys = args.systems_or(&[PaperSystem::Al])[0];
    let scale = args.gen_scale(40);
    let bs = args.batch.unwrap_or(16);
    let epochs = args.epochs.unwrap_or(6);

    println!("# Figure 4: quasi-learning-rate factor vs energy convergence");
    println!(
        "# system = {}, bs = {bs}, {} frames/temperature, model = {:?}\n",
        sys.preset().name,
        scale.frames_per_temperature,
        args.model_scale()
    );

    let factors = [
        ("factor 1", QuasiLr::One),
        ("factor sqrt(bs)", QuasiLr::SqrtBs),
        ("factor bs", QuasiLr::LinearBs),
    ];
    let mut series = Vec::new();
    for (label, q) in factors {
        let mut s = setup(sys, &scale, args.model_scale(), args.seed);
        let cfg = TrainConfig {
            batch_size: bs,
            max_epochs: epochs,
            eval_frames: 48,
            ..Default::default()
        };
        let fekf_cfg = FekfConfig { quasi_lr: q, ..FekfConfig::default() };
        let out = run_fekf(&mut s, cfg, fekf_cfg);
        series.push((label, out.history));
    }

    let mut headers = vec!["epoch".to_string()];
    headers.extend(series.iter().map(|(l, _)| l.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&headers_ref);
    for e in 0..epochs {
        let mut row = vec![(e + 1).to_string()];
        for (_, h) in &series {
            row.push(
                h.epochs
                    .get(e)
                    .map(|r| format!("{:.5}", r.train.energy_rmse))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t.row(&row);
    }
    t.print();
    println!("\n# paper (Fig 4): sqrt(bs) converges fastest; the linear-bs factor destabilizes.");
}
