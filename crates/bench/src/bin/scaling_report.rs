//! §5.3 scalability analysis — communication volume and modeled time
//! per training iteration as the device count grows.
//!
//! FEKF communicates only the batch-reduced gradient (~0.2 MB for the
//! 26.6k-parameter network) once per weight update (1 energy + 4
//! force), plus `O(r)` scalar absolute errors; the replicated `P` is
//! never sent. A fusiform Naive-EKF that kept per-sample `P`s
//! consistent would move the full block-diagonal `P` (~1.7 GB) instead
//! — this report prints both side by side with the paper's A100/RoCE
//! cluster time model.

use dp_bench::{fmt_mb, Args, Table};
use dp_parallel::comm_model::{
    fekf_iteration_stats, naive_ekf_p_stats, ring_allreduce_stats, ClusterModel,
};

fn main() {
    let _args = Args::parse();
    let n_params = 26_651; // the paper's parameter count
    let blocks = [1350usize, 10240, 9760, 5301];
    let cluster = ClusterModel::paper_cluster();

    println!("# §5.3 scalability: per-iteration communication vs #devices");
    println!("# network: {n_params} parameters; updates per iteration: 1 energy + 4 force\n");
    let mut t = Table::new(&[
        "#devices",
        "FEKF bytes/rank",
        "FEKF time (model)",
        "Adam bytes/rank",
        "Naive-EKF P bytes/rank",
        "Naive/FEKF ratio",
    ]);
    for r in [1usize, 2, 4, 8, 16] {
        let fekf = fekf_iteration_stats(n_params, r, 4);
        // Adam allreduces one loss gradient per iteration.
        let adam = ring_allreduce_stats(n_params, r);
        let naive = naive_ekf_p_stats(&blocks, r);
        let ratio = if fekf.bytes_sent_per_rank > 0 {
            format!(
                "{:.0}x",
                naive.bytes_sent_per_rank as f64 / fekf.bytes_sent_per_rank as f64
            )
        } else {
            "-".into()
        };
        t.row(&[
            r.to_string(),
            fmt_mb(fekf.bytes_sent_per_rank),
            format!("{:.1} µs", cluster.time(&fekf) * 1e6),
            fmt_mb(adam.bytes_sent_per_rank),
            fmt_mb(naive.bytes_sent_per_rank),
            ratio,
        ]);
    }
    t.print();
    println!("\n# paper: gradient g ≈ 0.2 MB, comm = (#GPUs−1)·Mem(g); ABE traffic is O(#GPUs)");
    println!("# scalars and negligible; P replicas are identical and never communicated.");
}
