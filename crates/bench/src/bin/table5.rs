//! Table 5 — Cu training wall time under different (batch size,
//! #devices) configurations.
//!
//! Paper row: RLEKF bs-1 26136 s (1×) → FEKF bs-32/1 GPU 576 s (54×) →
//! bs-512/4 GPUs 360 s (72×) → bs-4096/16 GPUs 281 s (93×).
//!
//! Here: RLEKF sets the accuracy bar and the 1× time; FEKF runs at
//! growing batch sizes on growing thread-device counts to the same
//! accuracy. Device counts beyond the physical cores cannot speed up a
//! 2-core box, so the table also prints the *modeled* per-iteration
//! communication time on the paper's A100/RoCE cluster
//! (`dp_parallel::comm_model`) to show the scaling headroom.

use dp_bench::{fmt_secs, Args, Table};
use dp_mdsim::systems::PaperSystem;
use dp_optim::fekf::FekfConfig;
use dp_parallel::comm_model::{fekf_iteration_stats, ClusterModel};
use dp_train::recipes::{run_fekf_distributed, run_rlekf, setup, ModelScale};
use dp_train::trainer::TrainConfig;

fn main() {
    let args = Args::parse();
    let scale = args.gen_scale(20);
    let budget = args.epochs.unwrap_or(2);
    let sys = args.systems_or(&[PaperSystem::Cu])[0];

    let model_scale = if args.paper_scale { ModelScale::Paper } else { ModelScale::Medium };
    println!("# Table 5: training wall time of the {} system", sys.preset().name);
    println!(
        "# scale: {} frames/temperature, model = {:?}, RLEKF budget = {budget} epochs\n",
        scale.frames_per_temperature,
        model_scale
    );

    // RLEKF reference.
    let mut s = setup(sys, &scale, model_scale, args.seed);
    let cfg = TrainConfig {
        batch_size: 1,
        max_epochs: budget,
        eval_frames: 32,
        ..Default::default()
    };
    let rlekf = run_rlekf(&mut s, cfg, 10240);
    let target = rlekf.final_train.combined() * 1.1;
    let base_t = rlekf.wall_s;
    let n_params = s.model.n_params();

    let mut t = Table::new(&[
        "config (bs, devices)",
        "wall time",
        "speedup",
        "epochs",
        "reached target",
        "comm/iter (measured)",
        "comm time/iter (A100 model)",
    ]);
    t.row(&[
        "RLEKF bs 1 (1 dev)".into(),
        fmt_secs(base_t),
        "1.0x".into(),
        rlekf.epochs_run.to_string(),
        "ref".into(),
        "0 B".into(),
        "-".into(),
    ]);

    let cluster = ClusterModel::paper_cluster();
    for &(bs, devs) in &[(16usize, 1usize), (32, 2), (64, 2)] {
        let mut s = setup(sys, &scale, model_scale, args.seed);
        let cfg = TrainConfig {
            batch_size: bs,
            max_epochs: budget * 10,
            target: Some(target),
            eval_frames: 32,
            eval_every: 4,
            ..Default::default()
        };
        let out = run_fekf_distributed(&mut s, cfg, FekfConfig::default(), devs);
        let comm_per_iter = if out.iterations > 0 {
            out.comm_bytes_per_rank / out.iterations as usize
        } else {
            0
        };
        let modeled = cluster.time(&fekf_iteration_stats(n_params, devs, 4));
        t.row(&[
            format!("FEKF bs {bs} ({devs} dev)"),
            fmt_secs(out.wall_s),
            format!("{:.1}x", base_t / out.wall_s),
            out.epochs_run.to_string(),
            if out.converged { "yes".into() } else { "cap".into() },
            format!("{:.2} KB", comm_per_iter as f64 / 1024.0),
            format!("{:.1} µs", modeled * 1e6),
        ]);
    }
    t.print();
    println!(
        "\n# paper (Table 5): 26136s (1x) → 576s (54x) → 360s (72x) → 281s (93x)."
    );
    println!("# note: this box has 2 physical cores; >2 devices oversubscribe, so the measured");
    println!("# curve flattens where the paper's 4/16-GPU rows keep improving — the modeled");
    println!("# communication column shows FEKF's comm stays in the microsecond range there.");
}
