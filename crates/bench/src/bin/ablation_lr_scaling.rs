//! Ablation: Adam learning-rate scaling rules for large batches.
//!
//! §1 remarks that "the default setting (scaling the learning rate by
//! multiplying with the square root of minibatch size) converges faster
//! than other heuristics such as adjusting the learning rate by
//! multiplying the minibatch size". This sweep trains Adam at one batch
//! size under the three rules (none / √bs / linear-bs) and prints the
//! energy-RMSE trajectory of each.

use dp_bench::{Args, Table};
use dp_mdsim::systems::PaperSystem;
use dp_optim::adam::{Adam, AdamConfig};
use dp_train::recipes::setup;
use dp_train::trainer::{TrainConfig, Trainer};

fn main() {
    let args = Args::parse();
    let sys = args.systems_or(&[PaperSystem::Al])[0];
    let scale = args.gen_scale(40);
    let bs = args.batch.unwrap_or(32);
    let epochs = args.epochs.unwrap_or(20);

    println!("# Ablation: Adam LR scaling at batch size {bs}");
    println!(
        "# system = {}, {} epochs, {} frames/temperature, model = {:?}\n",
        sys.preset().name,
        epochs,
        scale.frames_per_temperature,
        args.model_scale()
    );

    let rules: [(&str, f64); 3] = [
        ("none (lr)", 1.0),
        ("sqrt(bs)·lr", (bs as f64).sqrt()),
        ("bs·lr", bs as f64),
    ];
    let mut histories = Vec::new();
    for (label, factor) in rules {
        let mut s = setup(sys, &scale, args.model_scale(), args.seed);
        let mut adam_cfg = AdamConfig::default();
        adam_cfg.lr *= factor;
        let mut opt = Adam::new(s.model.n_params(), adam_cfg);
        let cfg = TrainConfig {
            batch_size: bs,
            max_epochs: epochs,
            eval_frames: 48,
            ..Default::default()
        };
        let out =
            Trainer::new(cfg).train_adam(&mut s.model, &mut opt, &s.train, Some(&s.test));
        histories.push((label, out.history));
    }

    let mut headers = vec!["epoch".to_string()];
    headers.extend(histories.iter().map(|(l, _)| l.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&headers_ref);
    for e in (0..epochs).step_by(2.max(epochs / 10)) {
        let mut row = vec![(e + 1).to_string()];
        for (_, h) in &histories {
            row.push(
                h.epochs
                    .get(e)
                    .map(|r| format!("{:.4}", r.train.energy_rmse))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t.row(&row);
    }
    t.print();
    println!("\n# paper §1: √bs scaling is the best of the simple heuristics — and still not");
    println!("# enough to make large-batch Adam competitive (that is Table 1's point).");
}
