//! Figure 7(c) — iteration-time decomposition under the step-by-step
//! system optimizations.
//!
//! Each iteration splits into three phases (the bar shades of the
//! figure): network **forward** to predictions/errors, **gradient**
//! computation for the EKF update, and the **KF** calculation flow. The
//! paper measures a 3.48× total-iteration speedup from baseline to
//! opt3; the forward and gradient phases shrink with the manual kernels
//! and fusion (opt1/opt2), the KF phase with the custom P kernel
//! (opt3).

use dp_bench::{Args, Table};
use dp_mdsim::systems::PaperSystem;
use dp_optim::fekf::FekfConfig;
use dp_tensor::kernel;
use dp_train::recipes::{run_fekf, setup};
use dp_train::targets::Backend;
use dp_train::trainer::TrainConfig;

fn main() {
    let args = Args::parse();
    let sys = args.systems_or(&[PaperSystem::Al])[0];
    let scale = args.gen_scale(16);
    let bs = args.batch.unwrap_or(16);
    let epochs = args.epochs.unwrap_or(1);

    println!("# Figure 7(c): per-iteration time decomposition (forward / gradient / KF)");
    println!(
        "# system = {}, bs = {bs}, model = {:?}\n",
        sys.preset().name,
        args.model_scale()
    );

    struct Config {
        name: &'static str,
        backend: Backend,
        fused_p: bool,
        fusion: bool,
    }
    let configs = [
        Config { name: "baseline (autograd)", backend: Backend::Tape, fused_p: false, fusion: false },
        Config { name: "opt1 (+manual kernels)", backend: Backend::Manual, fused_p: false, fusion: false },
        Config { name: "opt2 (+fusion)", backend: Backend::Manual, fused_p: false, fusion: true },
        Config { name: "opt3 (+P kernel & Pg cache)", backend: Backend::Manual, fused_p: true, fusion: true },
    ];

    let mut t = Table::new(&[
        "config",
        "forward ms/iter",
        "gradient ms/iter",
        "KF ms/iter",
        "total ms/iter",
        "speedup vs baseline",
    ]);
    let mut baseline_total = 0.0f64;
    for (i, c) in configs.iter().enumerate() {
        kernel::set_fusion_enabled(c.fusion);
        let mut s = setup(sys, &scale, args.model_scale(), args.seed);
        let cfg = TrainConfig {
            batch_size: bs,
            max_epochs: epochs,
            eval_frames: 8,
            backend: c.backend,
            ..Default::default()
        };
        let out = run_fekf(&mut s, cfg, FekfConfig { fused: c.fused_p, ..FekfConfig::default() });
        kernel::set_fusion_enabled(false);
        let iters = out.iterations.max(1) as f64;
        let fwd = out.phases.forward.as_secs_f64() * 1e3 / iters;
        let grad = out.phases.gradient.as_secs_f64() * 1e3 / iters;
        let kf = out.phases.optimizer.as_secs_f64() * 1e3 / iters;
        let total = fwd + grad + kf;
        if i == 0 {
            baseline_total = total;
        }
        t.row(&[
            c.name.to_string(),
            format!("{fwd:.1}"),
            format!("{grad:.1}"),
            format!("{kf:.1}"),
            format!("{total:.1}"),
            format!("{:.2}x", baseline_total / total),
        ]);
    }
    t.print();
    println!("\n# paper (Fig 7c): total iteration time 3.48x faster after all optimizations.");
}
