//! Diagnostic probe (not part of the experiment suite): prints
//! iteration-level RMSE and update norms for FEKF on a small system.

use dp_bench::Args;
use dp_optim::fekf::{Fekf, FekfConfig};
use dp_train::recipes::{setup, ModelScale};
use dp_train::targets::{energy_target, force_targets};
use dp_data::generate::GenScale;
use dp_mdsim::systems::PaperSystem;
use deepmd_core::loss;

fn main() {
    let args = Args::parse();
    let scale = GenScale { frames_per_temperature: 24, equilibration: 80, stride: 4 };
    let sys = args.systems.clone().map(|v| v[0]).unwrap_or(PaperSystem::Al);
    let mut s = setup(sys, &scale, ModelScale::Small, args.seed);
    let bs = args.batch.unwrap_or(16);
    let model = &mut s.model;
    let mut opt = Fekf::new(&model.layer_sizes(), bs, FekfConfig::default());
    let n_params = model.n_params();
    let m0 = loss::evaluate(model, &s.train, 32);
    println!("init: E_rmse={:.4} F_rmse={:.4}", m0.energy_rmse, m0.force_rmse);
    let n = s.train.len();
    for it in 0..30 {
        let batch: Vec<usize> = (0..bs).map(|k| (it * bs + k) % n).collect();
        // energy
        let mut gsum = vec![0.0; n_params];
        let mut abe = 0.0;
        for &i in &batch {
            let pass = model.forward(&s.train.frames[i]);
            let t = energy_target(model, &pass);
            for (x, y) in gsum.iter_mut().zip(&t.grad) { *x += y; }
            abe += t.abe / bs as f64;
        }
        let gn = gsum.iter().map(|v| v*v).sum::<f64>().sqrt();
        let delta = opt.step(&gsum, abe);
        let dn = delta.iter().map(|v| v*v).sum::<f64>().sqrt();
        model.apply_update(&delta);
        print!("it {it}: E abe={abe:.4} |g|={gn:.3} |dw|={dn:.4} ");
        // force
        let mut grads = vec![vec![0.0; n_params]; 4];
        let mut abes = [0.0; 4];
        for &i in &batch {
            let frame = &s.train.frames[i];
            let pass = model.forward(frame);
            let forces = model.forces(&pass);
            let ts = force_targets(model, &pass, &forces, frame, 4);
            for (k, t) in ts.iter().enumerate() {
                for (x, y) in grads[k].iter_mut().zip(&t.grad) { *x += y; }
                abes[k] += t.abe / bs as f64;
            }
        }
        let mut dtot = 0.0;
        for k in 0..4 {
            let delta = opt.step(&grads[k], abes[k]);
            dtot += delta.iter().map(|v| v*v).sum::<f64>().sqrt();
            model.apply_update(&delta);
        }
        let m = loss::evaluate(model, &s.train, 16);
        println!("| F abe={:.4} |dwF|={dtot:.4} -> E_rmse={:.4} F_rmse={:.4} lam={:.4}",
            abes.iter().sum::<f64>()/4.0, m.energy_rmse, m.force_rmse, opt.core().mem.lambda);
    }
}
