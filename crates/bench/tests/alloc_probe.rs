//! Allocation probe for the FEKF hot path (ISSUE 2 acceptance
//! criterion): one steady-state optimizer iteration — `q = P·g`, Kalman
//! gain, Δw scatter, fused `P` update — must perform **zero** heap
//! allocations, including the pool dispatch that parallelizes the block
//! kernels.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms the path up (worker spawn, scratch sizing) and then asserts the
//! allocation counter does not move across further steps. Kept as a
//! single test function: the counter is process-global.

use dp_optim::fekf::{Fekf, FekfConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_fekf_step_is_allocation_free() {
    // A 512-wide block crosses PAR_FLOPS_THRESHOLD (512² ≥ 2¹⁷), so both
    // the `P·g` GEMV and the fused `P` update take the *pool* path — the
    // probe covers parallel dispatch, not just the sequential loop.
    dp_pool::set_threads(2);
    let n = 512;
    let mut opt = Fekf::new(&[n], n, FekfConfig::default());
    let g: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() * 1e-2).collect();
    let mut delta = vec![0.0; n];

    // Warmup: spawn workers, size the KF scratch, fault in lazy statics.
    for _ in 0..3 {
        opt.step_into(&g, 0.1, &mut delta);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..10 {
        opt.step_into(&g, 0.1, &mut delta);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state FEKF step must not allocate ({} allocations in 10 steps)",
        after - before
    );

    // Sanity: the counter itself works.
    let before = ALLOCS.load(Ordering::SeqCst);
    let v = vec![0u8; 1024];
    assert!(ALLOCS.load(Ordering::SeqCst) > before);
    drop(v);
    dp_pool::set_threads(1);
}
