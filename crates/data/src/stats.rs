//! Per-type energy-bias fitting.
//!
//! DeePMD does not fit raw total energies: a per-type atomic reference
//! energy (the "energy bias") is removed first so the network only has
//! to learn the configuration-dependent residual. The bias is the
//! least-squares solution of `Σ_t count_t(frame) · b_t ≈ E(frame)` over
//! the training frames — a tiny `n_types × n_types` normal-equation
//! system solved by Gaussian elimination with partial pivoting.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Per-type energy bias (eV/atom of that type).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyBias {
    /// Bias per type id.
    pub per_type: Vec<f64>,
}

impl EnergyBias {
    /// Fit from a training set.
    pub fn fit(train: &Dataset) -> Self {
        let nt = train.n_types();
        assert!(nt > 0, "EnergyBias::fit: no types");
        assert!(!train.is_empty(), "EnergyBias::fit: empty dataset");
        // Normal equations AᵀA b = Aᵀy with A[frame][type] = count.
        let mut ata = vec![vec![0.0; nt]; nt];
        let mut aty = vec![0.0; nt];
        for f in &train.frames {
            let mut counts = vec![0.0; nt];
            for &t in &f.types {
                counts[t] += 1.0;
            }
            for i in 0..nt {
                aty[i] += counts[i] * f.energy;
                for j in 0..nt {
                    ata[i][j] += counts[i] * counts[j];
                }
            }
        }
        // Ridge term for singular cases (e.g. fixed stoichiometry makes
        // counts collinear across frames).
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += 1e-9;
            let _ = i;
        }
        let per_type = solve(ata, aty);
        EnergyBias { per_type }
    }

    /// Reference energy of a frame: `Σ_t count_t · b_t`.
    pub fn reference_energy(&self, types: &[usize]) -> f64 {
        types.iter().map(|&t| self.per_type[t]).sum()
    }

    /// Residual label the network trains on.
    pub fn residual(&self, energy: f64, types: &[usize]) -> f64 {
        energy - self.reference_energy(types)
    }
}

/// Solve `A x = y` by Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut y: Vec<f64>) -> Vec<f64> {
    let n = y.len();
    for col in 0..n {
        // Pivot.
        let piv = (col..n)
            .max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))
            .unwrap();
        a.swap(col, piv);
        y.swap(col, piv);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-300, "singular bias system");
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            // `row > col`, so the pivot row sits in the head split.
            let (head, tail) = a.split_at_mut(row);
            for (t, p) in tail[0][col..].iter_mut().zip(&head[col][col..]) {
                *t -= factor * p;
            }
            y[row] -= factor * y[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = y[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Snapshot;
    use dp_mdsim::Vec3;

    fn frame(types: Vec<usize>, energy: f64) -> Snapshot {
        let n = types.len();
        Snapshot {
            cell: [10.0; 3],
            types,
            type_names: vec!["A".into(), "B".into()],
            pos: vec![Vec3::ZERO; n],
            energy,
            forces: vec![Vec3::ZERO; n],
            temperature: 300.0,
        }
    }

    #[test]
    fn recovers_exact_linear_bias() {
        // E = 2·(#A) − 3·(#B), varying stoichiometry.
        let mut d = Dataset::new("t", vec!["A".into(), "B".into()]);
        d.push(frame(vec![0, 0, 1], 2.0 * 2.0 - 3.0));
        d.push(frame(vec![0, 1, 1], 2.0 - 6.0));
        d.push(frame(vec![0, 0, 0, 1], 6.0 - 3.0));
        let bias = EnergyBias::fit(&d);
        assert!((bias.per_type[0] - 2.0).abs() < 1e-6);
        assert!((bias.per_type[1] + 3.0).abs() < 1e-6);
        assert!(bias.residual(d.frames[0].energy, &d.frames[0].types).abs() < 1e-6);
    }

    #[test]
    fn fixed_stoichiometry_still_produces_finite_bias() {
        // Every frame 2×A + 2×B: counts are collinear, the ridge term
        // keeps the solve well-posed and residuals near zero.
        let mut d = Dataset::new("t", vec!["A".into(), "B".into()]);
        for e in [-8.0, -8.1, -7.9] {
            d.push(frame(vec![0, 0, 1, 1], e));
        }
        let bias = EnergyBias::fit(&d);
        assert!(bias.per_type.iter().all(|b| b.is_finite()));
        let r = bias.residual(-8.0, &[0, 0, 1, 1]);
        assert!(r.abs() < 0.2, "residual {r} should be near zero");
    }

    #[test]
    fn single_type_bias_is_mean_energy_per_atom() {
        let mut d = Dataset::new("t", vec!["A".into()]);
        d.push(frame(vec![0, 0], -4.0));
        d.push(frame(vec![0, 0], -4.4));
        let bias = EnergyBias::fit(&d);
        assert!((bias.per_type[0] + 2.1).abs() < 1e-9);
    }
}
