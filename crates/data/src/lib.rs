//! # dp-data — dataset layer
//!
//! Containers and plumbing between the MD labelling oracle
//! ([`dp_mdsim`]) and the DeePMD training stack: labelled snapshots,
//! train/test splits, minibatch sampling (the paper's central object of
//! study is the training *batch size*), per-type energy-bias fitting, a
//! compact binary on-disk format, and the generators that realize the
//! paper's Table 3 datasets.

pub mod batch;
pub mod dataset;
pub mod generate;
pub mod io;
pub mod split;
pub mod stats;

pub use batch::BatchSampler;
pub use dataset::{Dataset, Snapshot};
