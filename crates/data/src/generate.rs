//! Dataset generation: realizes the paper's Table 3 protocol with the
//! classical labelling oracle.
//!
//! For each system, trajectories are run at every preset temperature and
//! subsampled at the preset stride; the per-temperature shards are
//! interleaved so minibatches mix temperatures (the paper stresses that
//! "samples are mixed with different temperatures when generating").

use crate::dataset::Dataset;
use dp_mdsim::md::{MdConfig, MdRunner};
use dp_mdsim::systems::PaperSystem;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Scale of a generated dataset.
#[derive(Clone, Copy, Debug)]
pub struct GenScale {
    /// Frames per temperature.
    pub frames_per_temperature: usize,
    /// Equilibration steps before sampling.
    pub equilibration: usize,
    /// Steps between recorded frames.
    pub stride: usize,
}

impl GenScale {
    /// Quick scale for tests/examples: a few hundred frames in seconds.
    pub fn quick() -> Self {
        GenScale { frames_per_temperature: 80, equilibration: 60, stride: 4 }
    }

    /// Benchmark scale used by the table/figure binaries.
    pub fn bench() -> Self {
        GenScale { frames_per_temperature: 220, equilibration: 120, stride: 5 }
    }

    /// Paper-sized generation (tens of thousands of frames; minutes to
    /// hours on this substrate).
    pub fn paper(system: PaperSystem) -> Self {
        let preset = system.preset();
        let per_t = preset.paper_snapshots / preset.temperatures.len().max(1);
        GenScale { frames_per_temperature: per_t, equilibration: 300, stride: 10 }
    }
}

/// Generate a labelled dataset for `system` at the given scale.
///
/// Deterministic in `seed`.
pub fn generate(system: PaperSystem, scale: &GenScale, seed: u64) -> Dataset {
    let preset = system.preset();
    let mut shards = Vec::new();
    for (ti, &temp) in preset.temperatures.iter().enumerate() {
        let (mut state, pot) = preset.instantiate();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ ((ti as u64 + 1) << 32));
        state.jitter_positions(0.02, &mut rng);
        let runner = MdRunner::new(pot.as_ref());
        let cfg = MdConfig {
            dt: preset.dt.min(1.5),
            temperature: temp,
            friction: 0.08,
            equilibration: scale.equilibration,
            stride: scale.stride,
        };
        shards.push(runner.sample(state, &cfg, scale.frames_per_temperature, &mut rng));
    }
    // Interleave temperature shards.
    let type_names = shards[0][0].type_names.clone();
    let mut ds = Dataset::new(preset.name, type_names);
    let max_len = shards.iter().map(Vec::len).max().unwrap_or(0);
    for k in 0..max_len {
        for shard in &shards {
            if let Some(frame) = shard.get(k) {
                ds.push(frame.clone());
            }
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_copper_dataset_has_expected_shape() {
        let scale = GenScale { frames_per_temperature: 5, equilibration: 20, stride: 2 };
        let ds = generate(PaperSystem::Cu, &scale, 1);
        assert_eq!(ds.name, "Cu");
        assert_eq!(ds.len(), 15); // 3 temperatures × 5 frames
        assert_eq!(ds.atoms_per_frame(), 108);
        assert!(ds.frames.iter().all(|f| f.energy.is_finite()));
        // Interleaving: the first three frames must carry the three
        // distinct generation temperatures.
        let t: Vec<f64> = ds.frames[..3].iter().map(|f| f.temperature).collect();
        assert_eq!(t, vec![400.0, 600.0, 800.0]);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let scale = GenScale { frames_per_temperature: 2, equilibration: 10, stride: 1 };
        let a = generate(PaperSystem::Al, &scale, 9);
        let b = generate(PaperSystem::Al, &scale, 9);
        assert_eq!(a.frames[0].energy, b.frames[0].energy);
        assert_eq!(a.frames[0].pos[0].0, b.frames[0].pos[0].0);
        let c = generate(PaperSystem::Al, &scale, 10);
        assert_ne!(a.frames[0].energy, c.frames[0].energy);
    }

    #[test]
    fn multispecies_dataset_keeps_type_names() {
        let scale = GenScale { frames_per_temperature: 2, equilibration: 10, stride: 1 };
        let ds = generate(PaperSystem::NaCl, &scale, 3);
        assert_eq!(ds.type_names, vec!["Na".to_string(), "Cl".to_string()]);
        assert_eq!(ds.n_types(), 2);
    }
}
