//! Deterministic train/test splitting.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Split `dataset` into `(train, test)` with `train_frac` of the frames
/// in the training set, shuffled deterministically by `seed`.
///
/// # Panics
/// Panics unless `0 < train_frac < 1` and the dataset has ≥ 2 frames.
pub fn train_test_split(dataset: &Dataset, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        train_frac > 0.0 && train_frac < 1.0,
        "train_frac must be in (0, 1)"
    );
    assert!(dataset.len() >= 2, "need at least 2 frames to split");
    let mut idx: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_train = ((dataset.len() as f64 * train_frac).round() as usize)
        .clamp(1, dataset.len() - 1);
    let mut train = Dataset::new(&dataset.name, dataset.type_names.clone());
    let mut test = Dataset::new(&dataset.name, dataset.type_names.clone());
    for (k, &i) in idx.iter().enumerate() {
        if k < n_train {
            train.push(dataset.frames[i].clone());
        } else {
            test.push(dataset.frames[i].clone());
        }
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Snapshot;
    use dp_mdsim::Vec3;

    fn dataset(n: usize) -> Dataset {
        let mut d = Dataset::new("toy", vec!["A".into()]);
        for i in 0..n {
            d.push(Snapshot {
                cell: [5.0; 3],
                types: vec![0],
                type_names: vec!["A".into()],
                pos: vec![Vec3::new(i as f64, 0.0, 0.0)],
                energy: i as f64,
                forces: vec![Vec3::ZERO],
                temperature: 300.0,
            });
        }
        d
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let d = dataset(100);
        let (train, test) = train_test_split(&d, 0.8, 1);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        // Energies are unique frame ids here; the union must be complete
        // and disjoint.
        let mut seen: Vec<i64> = train
            .frames
            .iter()
            .chain(&test.frames)
            .map(|f| f.energy as i64)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = dataset(50);
        let (a, _) = train_test_split(&d, 0.5, 7);
        let (b, _) = train_test_split(&d, 0.5, 7);
        let (c, _) = train_test_split(&d, 0.5, 8);
        let ea: Vec<i64> = a.frames.iter().map(|f| f.energy as i64).collect();
        let eb: Vec<i64> = b.frames.iter().map(|f| f.energy as i64).collect();
        let ec: Vec<i64> = c.frames.iter().map(|f| f.energy as i64).collect();
        assert_eq!(ea, eb);
        assert_ne!(ea, ec, "different seeds should shuffle differently");
    }

    #[test]
    fn extreme_fraction_keeps_both_sides_nonempty() {
        let d = dataset(3);
        let (train, test) = train_test_split(&d, 0.99, 0);
        assert!(!train.is_empty() && !test.is_empty());
    }

    #[test]
    #[should_panic(expected = "train_frac must be in")]
    fn bad_fraction_panics() {
        let d = dataset(10);
        let _ = train_test_split(&d, 1.0, 0);
    }
}
