//! Labelled snapshots and datasets.

use dp_mdsim::md::LabeledFrame;
use dp_mdsim::Vec3;
use serde::{Deserialize, Serialize};

/// One training sample ("image" in the paper's terminology): an atomic
/// configuration with its energy and force labels.
///
/// This is the same data as [`dp_mdsim::md::LabeledFrame`]; re-exported
/// under the training-side name.
pub type Snapshot = LabeledFrame;

/// A labelled dataset for one physical system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// System name (e.g. "Cu").
    pub name: String,
    /// Species names shared by all frames, indexed by type id.
    pub type_names: Vec<String>,
    /// The labelled frames.
    pub frames: Vec<Snapshot>,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new(name: &str, type_names: Vec<String>) -> Self {
        Dataset { name: name.to_string(), type_names, frames: Vec::new() }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when there are no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Number of distinct atom types.
    pub fn n_types(&self) -> usize {
        self.type_names.len()
    }

    /// Atoms per frame (frames of one bulk system share the atom count).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn atoms_per_frame(&self) -> usize {
        self.frames
            .first()
            .expect("atoms_per_frame: empty dataset")
            .types
            .len()
    }

    /// Append a frame, checking type consistency.
    pub fn push(&mut self, frame: Snapshot) {
        debug_assert!(
            frame.types.iter().all(|&t| t < self.n_types()),
            "frame type id out of range"
        );
        self.frames.push(frame);
    }

    /// Append all frames of `other` (types must match).
    ///
    /// # Panics
    /// Panics if the type tables differ.
    pub fn merge(&mut self, other: &Dataset) {
        assert_eq!(
            self.type_names, other.type_names,
            "merge: incompatible type tables"
        );
        self.frames.extend(other.frames.iter().cloned());
    }

    /// Mean energy per atom over the dataset.
    pub fn mean_energy_per_atom(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames
            .iter()
            .map(|f| f.energy / f.types.len() as f64)
            .sum::<f64>()
            / self.frames.len() as f64
    }

    /// Root-mean-square force component over the dataset (a natural
    /// scale for force errors).
    pub fn force_rms(&self) -> f64 {
        let mut acc = 0.0;
        let mut n = 0usize;
        for f in &self.frames {
            for v in &f.forces {
                acc += v.norm2();
                n += 3;
            }
        }
        if n == 0 {
            0.0
        } else {
            (acc / n as f64).sqrt()
        }
    }

    /// Flatten a frame's forces to `[f1x, f1y, f1z, f2x, …]`.
    pub fn flatten_forces(frame: &Snapshot) -> Vec<f64> {
        frame.forces.iter().flat_map(|v: &Vec3| v.0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_frame(e: f64) -> Snapshot {
        Snapshot {
            cell: [5.0, 5.0, 5.0],
            types: vec![0, 0],
            type_names: vec!["A".into()],
            pos: vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)],
            energy: e,
            forces: vec![Vec3::new(1.0, 2.0, 2.0), Vec3::ZERO],
            temperature: 300.0,
        }
    }

    #[test]
    fn push_and_stats() {
        let mut d = Dataset::new("toy", vec!["A".into()]);
        d.push(tiny_frame(-2.0));
        d.push(tiny_frame(-4.0));
        assert_eq!(d.len(), 2);
        assert_eq!(d.atoms_per_frame(), 2);
        assert!((d.mean_energy_per_atom() + 1.5).abs() < 1e-12);
        // force_rms: components 1,2,2,0,0,0 per frame → mean sq = 9/6.
        assert!((d.force_rms() - (1.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn flatten_forces_order() {
        let f = tiny_frame(0.0);
        assert_eq!(
            Dataset::flatten_forces(&f),
            vec![1.0, 2.0, 2.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn merge_appends_frames() {
        let mut a = Dataset::new("toy", vec!["A".into()]);
        a.push(tiny_frame(-1.0));
        let mut b = Dataset::new("toy2", vec!["A".into()]);
        b.push(tiny_frame(-2.0));
        b.push(tiny_frame(-3.0));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.frames[2].energy, -3.0);
    }

    #[test]
    #[should_panic(expected = "incompatible type tables")]
    fn merge_rejects_mismatched_types() {
        let mut a = Dataset::new("a", vec!["A".into()]);
        let b = Dataset::new("b", vec!["B".into()]);
        a.merge(&b);
    }

    #[test]
    fn empty_dataset_statistics_are_zero() {
        let d = Dataset::new("empty", vec!["A".into()]);
        assert!(d.is_empty());
        assert_eq!(d.mean_energy_per_atom(), 0.0);
        assert_eq!(d.force_rms(), 0.0);
    }
}
