//! Minibatch sampling.
//!
//! The paper's entire study revolves around the *training batch size*
//! (`bs`): RLEKF uses `bs = 1`, FEKF scales it to 32…4096. The sampler
//! draws random permutations per epoch and yields contiguous index
//! batches, mirroring the random-without-replacement sampling of the
//! reference implementation.

use rand::seq::SliceRandom;
use rand::Rng;

/// Epoch-wise shuffled minibatch sampler over `n` samples.
#[derive(Clone, Debug)]
pub struct BatchSampler {
    n: usize,
    batch_size: usize,
    drop_last: bool,
}

impl BatchSampler {
    /// Create a sampler over `n` samples with the given batch size.
    ///
    /// `drop_last` discards a trailing ragged batch (the reference
    /// implementation's behaviour when the dataset size is not a
    /// multiple of `bs`).
    ///
    /// # Panics
    /// Panics if `n == 0` or `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, drop_last: bool) -> Self {
        assert!(n > 0, "BatchSampler: empty dataset");
        assert!(batch_size > 0, "BatchSampler: zero batch size");
        BatchSampler { n, batch_size, drop_last }
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        if self.drop_last {
            self.n / self.batch_size
        } else {
            self.n.div_ceil(self.batch_size)
        }
    }

    /// Produce one epoch of shuffled index batches.
    pub fn epoch(&self, rng: &mut impl Rng) -> Vec<Vec<usize>> {
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.shuffle(rng);
        let mut out = Vec::with_capacity(self.batches_per_epoch());
        for chunk in idx.chunks(self.batch_size) {
            if self.drop_last && chunk.len() < self.batch_size {
                break;
            }
            out.push(chunk.to_vec());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn epoch_covers_all_samples_without_drop() {
        let s = BatchSampler::new(10, 3, false);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let batches = s.epoch(&mut rng);
        assert_eq!(batches.len(), 4);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_last_discards_ragged_batch() {
        let s = BatchSampler::new(10, 3, true);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let batches = s.epoch(&mut rng);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.len() == 3));
        assert_eq!(s.batches_per_epoch(), 3);
    }

    #[test]
    fn shuffling_differs_between_epochs() {
        let s = BatchSampler::new(64, 8, false);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let e1 = s.epoch(&mut rng);
        let e2 = s.epoch(&mut rng);
        assert_ne!(e1, e2, "two epochs should rarely coincide");
    }

    #[test]
    fn batch_size_one_yields_singletons() {
        let s = BatchSampler::new(5, 1, false);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batches = s.epoch(&mut rng);
        assert_eq!(batches.len(), 5);
        assert!(batches.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn oversized_batch_returns_single_full_batch() {
        let s = BatchSampler::new(4, 100, false);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batches = s.epoch(&mut rng);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 4);
    }
}
