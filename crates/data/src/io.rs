//! Compact binary on-disk format for datasets.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "DPDS" | version u32 | name | type_names | n_frames u64 | frames…
//! frame := cell 3×f64 | n_atoms u64 | types n×u64 | pos 3n×f64 |
//!          energy f64 | forces 3n×f64 | temperature f64
//! string := len u64 | utf8 bytes
//! ```
//!
//! The paper's artifact ships `npy` feature files ("Saving npy file
//! done"); this plays the same role for our pipeline.

use crate::dataset::{Dataset, Snapshot};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dp_mdsim::Vec3;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"DPDS";
const VERSION: u32 = 1;

/// Serialize a dataset to bytes.
pub fn to_bytes(ds: &Dataset) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    put_string(&mut buf, &ds.name);
    buf.put_u64_le(ds.type_names.len() as u64);
    for t in &ds.type_names {
        put_string(&mut buf, t);
    }
    buf.put_u64_le(ds.frames.len() as u64);
    for f in &ds.frames {
        for c in f.cell {
            buf.put_f64_le(c);
        }
        buf.put_u64_le(f.types.len() as u64);
        for &t in &f.types {
            buf.put_u64_le(t as u64);
        }
        for p in &f.pos {
            for c in p.0 {
                buf.put_f64_le(c);
            }
        }
        buf.put_f64_le(f.energy);
        for v in &f.forces {
            for c in v.0 {
                buf.put_f64_le(c);
            }
        }
        buf.put_f64_le(f.temperature);
    }
    buf.freeze()
}

/// Deserialize a dataset from bytes.
pub fn from_bytes(mut b: &[u8]) -> io::Result<Dataset> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if b.remaining() < 8 || &b[..4] != MAGIC {
        return Err(err("bad magic"));
    }
    b.advance(4);
    let version = b.get_u32_le();
    if version != VERSION {
        return Err(err("unsupported version"));
    }
    let name = get_string(&mut b)?;
    let n_types = get_u64(&mut b)? as usize;
    let mut type_names = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        type_names.push(get_string(&mut b)?);
    }
    let n_frames = get_u64(&mut b)? as usize;
    let mut ds = Dataset::new(&name, type_names.clone());
    for _ in 0..n_frames {
        if b.remaining() < 3 * 8 + 8 {
            return Err(err("truncated frame header"));
        }
        let cell = [b.get_f64_le(), b.get_f64_le(), b.get_f64_le()];
        let n = b.get_u64_le() as usize;
        let need = n * 8 + n * 24 + 8 + n * 24 + 8;
        if b.remaining() < need {
            return Err(err("truncated frame body"));
        }
        let mut types = Vec::with_capacity(n);
        for _ in 0..n {
            types.push(b.get_u64_le() as usize);
        }
        let mut pos = Vec::with_capacity(n);
        for _ in 0..n {
            pos.push(Vec3::new(b.get_f64_le(), b.get_f64_le(), b.get_f64_le()));
        }
        let energy = b.get_f64_le();
        let mut forces = Vec::with_capacity(n);
        for _ in 0..n {
            forces.push(Vec3::new(b.get_f64_le(), b.get_f64_le(), b.get_f64_le()));
        }
        let temperature = b.get_f64_le();
        ds.push(Snapshot {
            cell,
            types,
            type_names: type_names.clone(),
            pos,
            energy,
            forces,
            temperature,
        });
    }
    Ok(ds)
}

/// Write a dataset to `path`.
pub fn save(ds: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_bytes(ds))
}

/// Read a dataset from `path`.
pub fn load(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let bytes = fs::read(path)?;
    from_bytes(&bytes)
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u64_le(s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_u64(b: &mut &[u8]) -> io::Result<u64> {
    if b.remaining() < 8 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated u64"));
    }
    Ok(b.get_u64_le())
}

fn get_string(b: &mut &[u8]) -> io::Result<String> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if b.remaining() < 8 {
        return Err(err("truncated string length"));
    }
    let len = b.get_u64_le() as usize;
    if b.remaining() < len {
        return Err(err("truncated string body"));
    }
    let s = String::from_utf8(b[..len].to_vec()).map_err(|_| err("invalid utf8"))?;
    b.advance(len);
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let mut d = Dataset::new("NaCl", vec!["Na".into(), "Cl".into()]);
        for k in 0..3 {
            d.push(Snapshot {
                cell: [5.64, 5.64, 5.64],
                types: vec![0, 1],
                type_names: vec!["Na".into(), "Cl".into()],
                pos: vec![Vec3::new(0.1 * k as f64, 0.0, 0.0), Vec3::new(2.8, 0.0, 0.0)],
                energy: -3.1 - k as f64,
                forces: vec![Vec3::new(0.5, -0.25, 0.0), Vec3::new(-0.5, 0.25, 0.0)],
                temperature: 300.0 + k as f64,
            });
        }
        d
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = sample_dataset();
        let bytes = to_bytes(&d);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.name, d.name);
        assert_eq!(back.type_names, d.type_names);
        assert_eq!(back.len(), d.len());
        for (a, b) in back.frames.iter().zip(&d.frames) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.types, b.types);
            assert_eq!(a.energy, b.energy);
            assert_eq!(a.temperature, b.temperature);
            for (p, q) in a.pos.iter().zip(&b.pos) {
                assert_eq!(p.0, q.0);
            }
            for (p, q) in a.forces.iter().zip(&b.forces) {
                assert_eq!(p.0, q.0);
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let d = sample_dataset();
        let path = std::env::temp_dir().join("dp_data_io_test.dpds");
        save(&d, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), d.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(from_bytes(b"NOPE....").is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn frame_strategy() -> impl Strategy<Value = Snapshot> {
            (1usize..6).prop_flat_map(|n| {
                (
                    proptest::collection::vec(0usize..2, n),
                    proptest::collection::vec(
                        proptest::array::uniform3(-10.0f64..10.0),
                        n,
                    ),
                    proptest::collection::vec(
                        proptest::array::uniform3(-5.0f64..5.0),
                        n,
                    ),
                    -100.0f64..100.0,
                    1.0f64..3000.0,
                )
                    .prop_map(|(types, pos, forces, energy, temperature)| Snapshot {
                        cell: [10.0, 11.0, 12.0],
                        types,
                        type_names: vec!["A".into(), "B".into()],
                        pos: pos.into_iter().map(Vec3).collect(),
                        forces: forces.into_iter().map(Vec3).collect(),
                        energy,
                        temperature,
                    })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[test]
            fn roundtrip_is_lossless(frames in proptest::collection::vec(frame_strategy(), 0..5)) {
                let mut ds = Dataset::new("prop", vec!["A".into(), "B".into()]);
                for f in frames {
                    ds.push(f);
                }
                let back = from_bytes(&to_bytes(&ds)).unwrap();
                prop_assert_eq!(back.len(), ds.len());
                for (a, b) in back.frames.iter().zip(&ds.frames) {
                    prop_assert_eq!(a.energy.to_bits(), b.energy.to_bits());
                    prop_assert_eq!(&a.types, &b.types);
                    for (p, q) in a.pos.iter().zip(&b.pos) {
                        prop_assert_eq!(p.0, q.0);
                    }
                    for (p, q) in a.forces.iter().zip(&b.forces) {
                        prop_assert_eq!(p.0, q.0);
                    }
                }
            }
        }
    }

    #[test]
    fn truncation_is_rejected_not_panicking() {
        let d = sample_dataset();
        let bytes = to_bytes(&d);
        for cut in [4usize, 9, 20, bytes.len() - 5] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} must error");
        }
    }
}
