//! Hot-swappable model snapshots.
//!
//! The online-learning loop produces a new model every few minutes; MD
//! clients query energies and forces continuously. The registry
//! decouples the two: [`ModelRegistry::publish`] installs a validated
//! snapshot with one atomic pointer store, and readers pick up the
//! current snapshot with [`ModelRegistry::current`] — two atomic
//! operations, no lock, no wait. In-flight requests keep the `Arc` of
//! the snapshot they started on and finish there; a swap is only ever
//! observed *between* requests, never inside one.
//!
//! ## Why the read path needs no lock
//!
//! `current` loads a raw pointer published by the last `publish` and
//! revives it into an `Arc` via `Arc::increment_strong_count`. That is
//! sound only if the pointee cannot be freed between the load and the
//! increment — the classic arc-swap race. The registry closes it by
//! *retaining* every published snapshot in an internal history list
//! (strong count ≥ 1 for the registry's lifetime), so the loaded
//! pointer is always alive and the increment is always on a live
//! count. The cost is one retained model per publish; an online loop
//! publishes once per retrain (seconds to minutes apart), so the
//! history stays small. [`ModelRegistry::prune`] reclaims old
//! snapshots when the caller can prove exclusivity (`&mut self`).

use crate::batch::ServeError;
use deepmd_core::compress::CompressedModel;
use deepmd_core::env_cache::EnvCache;
use deepmd_core::model::DeepPotModel;
use deepmd_core::model_io;
use deepmd_core::quant::QuantizedModel;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// An immutable published model snapshot: the weights, a monotonically
/// increasing version tag, and the snapshot's own environment cache
/// (geometries are keyed by hash, so the cache is valid exactly as
/// long as the model's normalization statistics — i.e. per snapshot).
///
/// Besides the f64 master, a snapshot can carry two reduced-fidelity
/// serving artifacts built from the *same* weights (so all tiers agree
/// on chemistry and statistics, and may share the geometry cache):
/// a spline-compressed model and a quantized energy-only model. The
/// engine routes per-request between them (`Fidelity`); publishes
/// without artifacts serve everything from the master.
#[derive(Debug)]
pub struct PublishedModel {
    /// 1-based publish sequence number ("which snapshot computed this
    /// response" — the hot-swap tests key on it).
    pub version: u64,
    /// The trained model.
    pub model: DeepPotModel,
    /// Direct-mapped geometry cache shared by all requests served from
    /// this snapshot.
    pub cache: EnvCache,
    /// Spline-compressed serving tier, if published.
    pub compressed: Option<CompressedModel>,
    /// Quantized energy-only serving tier, if published.
    pub quantized: Option<QuantizedModel>,
}

/// Registry of published snapshots with atomic hot-swap.
pub struct ModelRegistry {
    /// Raw pointer into the `Arc` most recently published. Always
    /// valid: `history` retains a strong reference to every snapshot.
    current: AtomicPtr<PublishedModel>,
    /// Every snapshot ever published (keeps `current`'s pointee — and
    /// any pointer a reader may have just loaded — alive).
    history: Mutex<Vec<Arc<PublishedModel>>>,
    /// Publish sequence counter.
    version: AtomicU64,
    /// Env-cache slots given to each new snapshot.
    cache_slots: usize,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("version", &self.version.load(Ordering::Relaxed))
            .field("cache_slots", &self.cache_slots)
            .finish()
    }
}

fn err(m: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, m)
}

impl ModelRegistry {
    /// Default env-cache slots per snapshot: enough for an MD driver's
    /// working set of recent geometries.
    pub const DEFAULT_CACHE_SLOTS: usize = 256;

    /// Create a registry serving `initial` as version 1.
    pub fn new(initial: DeepPotModel) -> Self {
        Self::with_cache_slots(initial, Self::DEFAULT_CACHE_SLOTS)
    }

    /// Create a registry with an explicit per-snapshot cache capacity
    /// (0 disables geometry caching entirely).
    pub fn with_cache_slots(initial: DeepPotModel, cache_slots: usize) -> Self {
        let snapshot = Arc::new(PublishedModel {
            version: 1,
            model: initial,
            cache: Self::make_cache(cache_slots),
            compressed: None,
            quantized: None,
        });
        let ptr = Arc::as_ptr(&snapshot) as *mut PublishedModel;
        ModelRegistry {
            current: AtomicPtr::new(ptr),
            history: Mutex::new(vec![snapshot]),
            version: AtomicU64::new(1),
            cache_slots,
        }
    }

    fn make_cache(slots: usize) -> EnvCache {
        if slots == 0 {
            EnvCache::disabled()
        } else {
            EnvCache::new(slots)
        }
    }

    /// The snapshot new requests should be computed against. Lock-free
    /// and wait-free: an atomic pointer load plus an atomic refcount
    /// increment.
    pub fn current(&self) -> Arc<PublishedModel> {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` was produced by `Arc::as_ptr` on a snapshot
        // that `history` retains with a strong count ≥ 1 for the whole
        // registry lifetime — the pointee is alive, so reviving a new
        // strong reference is sound.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Version tag of the current snapshot.
    pub fn current_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Number of swaps performed (publishes after the initial model).
    pub fn swap_count(&self) -> u64 {
        self.current_version().saturating_sub(1)
    }

    /// Snapshots retained in the history (≥ 1).
    pub fn retained(&self) -> usize {
        self.history.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Look up a retained snapshot by version — the engine's circuit
    /// breaker uses this to route batches back to the last-good
    /// version when the current snapshot keeps failing evaluation.
    ///
    /// `None` if that version was pruned (or never existed). This is a
    /// genuine lookup of the retained history, never a cached alias:
    /// once [`ModelRegistry::prune`] drops a version, asking for it
    /// returns `None` — a stale `Arc` to a pruned snapshot can only be
    /// held by whoever captured it *before* the prune. Callers that
    /// need the distinction as a typed error use
    /// [`ModelRegistry::snapshot_checked`].
    pub fn snapshot_at(&self, version: u64) -> Option<Arc<PublishedModel>> {
        self.history
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .find(|s| s.version == version)
            .map(Arc::clone)
    }

    /// Like [`ModelRegistry::snapshot_at`], but a miss is the typed
    /// [`ServeError::SnapshotPruned`] carrying the version asked for
    /// and the registry's current version — the answer the wire
    /// protocol and fleet paths propagate instead of a bare `None`.
    pub fn snapshot_checked(&self, version: u64) -> Result<Arc<PublishedModel>, ServeError> {
        self.snapshot_at(version).ok_or(ServeError::SnapshotPruned {
            version,
            current: self.current_version(),
        })
    }

    /// Publish a new model: validate it against the serving contract
    /// (same species count as the current snapshot — an MD client mid-
    /// trajectory cannot change chemistry) and swap it in atomically.
    /// In-flight requests finish on the snapshot they started with.
    /// Returns the new version tag.
    pub fn publish(&self, model: DeepPotModel) -> io::Result<u64> {
        self.publish_with_artifacts(model, None, None)
    }

    /// Publish a model together with its reduced-fidelity serving
    /// artifacts. Beyond the master's validation, each artifact must
    /// agree with the master on the species count — they are built
    /// from the same weights, and a mismatched artifact would route
    /// requests to a different chemistry.
    pub fn publish_with_artifacts(
        &self,
        model: DeepPotModel,
        compressed: Option<CompressedModel>,
        quantized: Option<QuantizedModel>,
    ) -> io::Result<u64> {
        model
            .cfg
            .try_validate()
            .map_err(|e| err(format!("refusing to publish invalid model: {e}")))?;
        if let Some(c) = &compressed {
            if c.cfg.n_types != model.cfg.n_types {
                return Err(err(format!(
                    "refusing to publish: compressed artifact has n_types {}, master {}",
                    c.cfg.n_types, model.cfg.n_types
                )));
            }
        }
        if let Some(q) = &quantized {
            if q.cfg.n_types != model.cfg.n_types {
                return Err(err(format!(
                    "refusing to publish: quantized artifact has n_types {}, master {}",
                    q.cfg.n_types, model.cfg.n_types
                )));
            }
        }
        let mut history = self.history.lock().unwrap_or_else(|e| e.into_inner());
        let cur_types = history
            .last()
            .map(|s| s.model.cfg.n_types)
            .unwrap_or(model.cfg.n_types);
        if model.cfg.n_types != cur_types {
            return Err(err(format!(
                "refusing to publish: n_types {} does not match the served model's {}",
                model.cfg.n_types, cur_types
            )));
        }
        let version = self.version.load(Ordering::Relaxed) + 1;
        let snapshot = Arc::new(PublishedModel {
            version,
            model,
            cache: Self::make_cache(self.cache_slots),
            compressed,
            quantized,
        });
        let ptr = Arc::as_ptr(&snapshot) as *mut PublishedModel;
        history.push(snapshot);
        // Order matters: the strong reference is in `history` *before*
        // the pointer becomes loadable, and the version counter trails
        // the pointer so `current_version() ≤ current().version` is
        // never violated for long (it is advisory either way).
        self.current.store(ptr, Ordering::Release);
        self.version.store(version, Ordering::Release);
        Ok(version)
    }

    /// Publish a serialized model, validating the bytes through the
    /// `model_io` loader (magic, CRC trailer, finite weights, config
    /// sanity) before anything reaches the serving path.
    pub fn publish_bytes(&self, bytes: &[u8]) -> io::Result<u64> {
        self.publish(model_io::from_bytes(bytes)?)
    }

    /// Publish a model file (the artifact the training loop checkpoints
    /// with `model_io::save`).
    pub fn publish_file(&self, path: impl AsRef<Path>) -> io::Result<u64> {
        self.publish(model_io::load(path)?)
    }

    /// Drop retained history beyond the newest `keep` snapshots.
    ///
    /// Requires `&mut self`: exclusive access proves no reader is
    /// between the pointer load and refcount increment of
    /// [`ModelRegistry::current`], so freeing old snapshots cannot race
    /// it. Snapshots still held by in-flight responses survive via
    /// their own `Arc`s. The current snapshot is always kept.
    ///
    /// Concurrent usage across shards therefore wraps the registry in
    /// a `RwLock`: readers (`current`, `publish`, `snapshot_at` — all
    /// `&self`) share the read lock, the pruner takes the write lock.
    /// After a prune, [`ModelRegistry::snapshot_at`] on a dropped
    /// version returns `None` and
    /// [`ModelRegistry::snapshot_checked`] returns
    /// [`ServeError::SnapshotPruned`] — never a stale snapshot.
    pub fn prune(&mut self, keep: usize) {
        let mut history = self.history.lock().unwrap_or_else(|e| e.into_inner());
        let keep = keep.max(1);
        if history.len() > keep {
            let drop_n = history.len() - keep;
            history.drain(..drop_n);
        }
    }
}

/// Model-id → registry table: the multi-tenant face of the registry.
///
/// A fleet serves many independent potentials (per-user, per-system);
/// each gets its own [`ModelRegistry`] under a `u64` model id. Id 0 is
/// the *default* model — the single-model engine API is exactly the
/// `model == 0` row, so every pre-fleet caller keeps working
/// unchanged. The map is read-mostly (per-batch lookups take a read
/// lock on a `BTreeMap`; registration is rare), and iteration order is
/// deterministic by id.
#[derive(Debug)]
pub struct ModelTable {
    models: RwLock<BTreeMap<u64, Arc<ModelRegistry>>>,
}

impl ModelTable {
    /// A table serving `registry` as model 0 (the single-model case).
    pub fn single(registry: Arc<ModelRegistry>) -> Arc<Self> {
        let mut map = BTreeMap::new();
        map.insert(0, registry);
        Arc::new(ModelTable { models: RwLock::new(map) })
    }

    /// A table with an explicit initial set of models.
    pub fn with_models(models: impl IntoIterator<Item = (u64, Arc<ModelRegistry>)>) -> Arc<Self> {
        Arc::new(ModelTable {
            models: RwLock::new(models.into_iter().collect()),
        })
    }

    /// Register (or replace) the registry behind `id`. Replacing is an
    /// atomic map update; requests in flight against the old registry
    /// finish on the snapshot `Arc`s they already hold.
    pub fn insert(&self, id: u64, registry: Arc<ModelRegistry>) {
        self.models
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, registry);
    }

    /// The registry behind `id`, if registered.
    pub fn get(&self, id: u64) -> Option<Arc<ModelRegistry>> {
        self.models
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .map(Arc::clone)
    }

    /// The registry behind `id`, or the typed
    /// [`ServeError::UnknownModel`].
    pub fn get_checked(&self, id: u64) -> Result<Arc<ModelRegistry>, ServeError> {
        self.get(id).ok_or(ServeError::UnknownModel { model: id })
    }

    /// Registered model ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.models
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .copied()
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{demo_frame as frame, demo_model as model};
    use dp_data::dataset::Dataset;
    use dp_mdsim::lattice::Species;
    use dp_mdsim::Vec3;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn publish_bumps_version_and_swaps_pointer() {
        let reg = ModelRegistry::new(model(1));
        assert_eq!(reg.current_version(), 1);
        assert_eq!(reg.swap_count(), 0);
        let v = reg.publish(model(2)).unwrap();
        assert_eq!(v, 2);
        assert_eq!(reg.current().version, 2);
        assert_eq!(reg.swap_count(), 1);
        assert_eq!(reg.retained(), 2);
    }

    #[test]
    fn in_flight_snapshot_survives_a_swap() {
        let reg = ModelRegistry::new(model(1));
        let held = reg.current();
        let e_before = held.model.predict(&frame(5)).energy;
        reg.publish(model(2)).unwrap();
        // The held snapshot still computes with the old weights.
        let e_after = held.model.predict(&frame(5)).energy;
        assert_eq!(e_before.to_bits(), e_after.to_bits());
        assert_eq!(held.version, 1);
        assert_ne!(reg.current().version, held.version);
    }

    #[test]
    fn publish_bytes_validates_through_model_io() {
        let reg = ModelRegistry::new(model(1));
        let good = model_io::to_bytes(&model(3));
        assert_eq!(reg.publish_bytes(&good).unwrap(), 2);
        // A corrupt byte stream is rejected before it can be served.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        let e = reg.publish_bytes(&bad).unwrap_err();
        assert!(e.to_string().contains("checksum"), "got: {e}");
        assert_eq!(reg.current_version(), 2, "failed publish must not swap");
    }

    #[test]
    fn species_mismatch_is_rejected() {
        let reg = ModelRegistry::new(model(1));
        // A two-species model cannot replace a one-species one mid-run.
        let mut cfg = deepmd_core::config::ModelConfig::small(2, 2.1);
        cfg.rcut_smooth = 1.2;
        let mut s =
            dp_mdsim::lattice::rocksalt(Species::new("A", 20.0), Species::new("B", 30.0), 4.4, [1, 1, 1]);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        s.jitter_positions(0.2, &mut rng);
        let f = dp_data::dataset::Snapshot {
            cell: s.cell.lengths(),
            types: s.types.clone(),
            type_names: s.type_names.clone(),
            pos: s.pos.clone(),
            energy: -1.0,
            forces: vec![Vec3::ZERO; s.n_atoms()],
            temperature: 300.0,
        };
        let mut ds = Dataset::new("AB", vec!["A".into(), "B".into()]);
        ds.push(f.clone());
        ds.push(f);
        let two_species = DeepPotModel::new(cfg, &ds);
        let e = reg.publish(two_species).unwrap_err();
        assert!(e.to_string().contains("n_types"), "got: {e}");
    }

    #[test]
    fn publish_with_artifacts_carries_both_tiers() {
        use deepmd_core::compress::CompressSpec;
        let reg = ModelRegistry::new(model(1));
        let m = model(2);
        let comp = CompressedModel::compress(&m, &CompressSpec::default()).unwrap();
        let quant = QuantizedModel::quantize(&comp, &[frame(1), frame(2)]).unwrap();
        let v = reg.publish_with_artifacts(m, Some(comp), Some(quant)).unwrap();
        assert_eq!(v, 2);
        let cur = reg.current();
        assert!(cur.compressed.is_some());
        assert!(cur.quantized.is_some());
        // A later master-only publish serves everything from the master
        // again — artifacts are per-snapshot, never inherited.
        reg.publish(model(3)).unwrap();
        let cur = reg.current();
        assert!(cur.compressed.is_none());
        assert!(cur.quantized.is_none());
    }

    #[test]
    fn snapshot_checked_types_the_pruned_miss() {
        let mut reg = ModelRegistry::new(model(1));
        for s in 2..5 {
            reg.publish(model(s)).unwrap();
        }
        assert_eq!(reg.snapshot_checked(2).unwrap().version, 2);
        reg.prune(1);
        assert!(reg.snapshot_at(2).is_none(), "pruned version must not resolve");
        assert_eq!(
            reg.snapshot_checked(2).unwrap_err(),
            ServeError::SnapshotPruned { version: 2, current: 4 }
        );
        // A version that never existed gets the same typed answer.
        assert!(matches!(
            reg.snapshot_checked(99).unwrap_err(),
            ServeError::SnapshotPruned { version: 99, current: 4 }
        ));
    }

    #[test]
    fn model_table_routes_ids_and_types_the_miss() {
        let table = ModelTable::single(Arc::new(ModelRegistry::new(model(1))));
        assert_eq!(table.ids(), vec![0]);
        table.insert(7, Arc::new(ModelRegistry::new(model(2))));
        assert_eq!(table.ids(), vec![0, 7]);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        assert!(table.get(7).is_some());
        assert_eq!(
            table.get_checked(3).unwrap_err(),
            ServeError::UnknownModel { model: 3 }
        );
    }

    #[test]
    fn prune_keeps_current_and_bounds_history() {
        let mut reg = ModelRegistry::new(model(1));
        for s in 2..6 {
            reg.publish(model(s)).unwrap();
        }
        assert_eq!(reg.retained(), 5);
        reg.prune(2);
        assert_eq!(reg.retained(), 2);
        assert_eq!(reg.current().version, 5, "current must survive pruning");
        reg.prune(0); // clamped to 1
        assert_eq!(reg.retained(), 1);
        assert_eq!(reg.current().version, 5);
    }
}
