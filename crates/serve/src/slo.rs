//! SLO policy: overload protection and graceful degradation.
//!
//! `BatchPolicy` bounds *latency per batch*; this module bounds the
//! whole serving loop under overload and partial failure, the way the
//! training side's `RobustConfig` bounds a retrain (DESIGN §7). Five
//! mechanisms, each with a typed outcome — nothing is ever dropped
//! silently:
//!
//! * **Admission control** — the queue has a hard capacity; a full
//!   queue rejects with [`ServeError::Overloaded`], and an interactive
//!   arrival evicts the newest *bulk* request first (the bulk lane is
//!   shed before the interactive lane ever is).
//! * **Deadline shedding** — a request may carry a latency budget; the
//!   dispatcher sheds requests whose wait (plus the projected service
//!   time) already exceeds it, with [`ServeError::DeadlineExceeded`] —
//!   work that cannot possibly meet its SLO is not worth computing.
//! * **Graceful degradation** — sustained queue pressure switches the
//!   engine to energy-only responses (the reverse force sweep is the
//!   expensive half of a request); pressure release switches back, with
//!   hysteresis on both edges. Degraded responses are flagged, and
//!   their energies are bitwise identical to the full path's.
//! * **Circuit breaker** — repeated model-eval failures
//!   ([`ServeError::EvalFailed`], e.g. a snapshot that predicts NaN)
//!   trip a breaker that routes batches back to the last-good
//!   registry version until a newer snapshot is published.
//! * **Client-side retry** — [`infer_with_retry`] retries *only*
//!   [`ServeError::Overloaded`] with capped exponential backoff under a
//!   shared [`RetryBudget`], so a stampede of retries cannot amplify
//!   the overload it is reacting to.

use crate::batch::{BatchPolicy, InferRequest, InferResponse, ServeError};
use crate::engine::Engine;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

/// Which lane a request rides in. Under overload the bulk lane is shed
/// first: an interactive MD step blocks a running trajectory, a bulk
/// relabeling request only delays a future retrain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive (an MD driver waiting on this step's forces).
    Interactive,
    /// Throughput work (relabeling, dataset replay); first to be shed.
    Bulk,
}

/// Full serving policy: the micro-batching knobs plus the overload,
/// degradation and breaker thresholds.
#[derive(Clone, Copy, Debug)]
pub struct SloPolicy {
    /// Micro-batch coalescing (size-or-deadline), as before.
    pub batch: BatchPolicy,
    /// Hard bound on queued requests across both lanes. Submissions
    /// beyond it get [`ServeError::Overloaded`] (or evict the newest
    /// bulk request if the arrival is interactive).
    pub queue_capacity: usize,
    /// Also shed when the *projected* completion (wait so far + EWMA
    /// service time) exceeds the request's deadline, not just when the
    /// deadline has already passed.
    pub shed_projected: bool,
    /// Queue depth at dispatch that counts as pressure.
    pub degrade_above: usize,
    /// Consecutive pressured dispatches before degrading to
    /// energy-only responses (0 and 1 both mean "on the first one").
    pub degrade_after: u32,
    /// Depth at dispatch that counts as calm again.
    pub resume_below: usize,
    /// Consecutive calm dispatches before resuming full responses.
    pub resume_after: u32,
    /// Consecutive model-eval failures that trip the circuit breaker
    /// (0 disables the breaker).
    pub breaker_threshold: u32,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            batch: BatchPolicy::default(),
            queue_capacity: 256,
            shed_projected: true,
            degrade_above: 128,
            degrade_after: 4,
            resume_below: 16,
            resume_after: 4,
            breaker_threshold: 4,
        }
    }
}

impl SloPolicy {
    /// The pre-SLO behavior: unbounded queue, no shedding, no
    /// degradation — only the breaker stays armed (routing around a
    /// snapshot that fails evaluation is strictly better than serving
    /// its NaNs). `Engine::start` uses this for compatibility.
    pub fn unbounded(batch: BatchPolicy) -> Self {
        SloPolicy {
            batch,
            queue_capacity: usize::MAX,
            shed_projected: false,
            degrade_above: usize::MAX,
            degrade_after: u32::MAX,
            resume_below: 0,
            resume_after: 1,
            breaker_threshold: 4,
        }
    }

    /// Always-degraded variant (pressure threshold zero) — the verify
    /// harness uses it to hold degraded energies to the bitwise claim.
    pub fn always_degraded(batch: BatchPolicy) -> Self {
        SloPolicy {
            batch,
            degrade_above: 0,
            degrade_after: 0,
            resume_below: 0,
            resume_after: u32::MAX,
            ..SloPolicy::default()
        }
    }
}

/// Hysteresis controller for the energy-only degradation mode. Driven
/// by the dispatcher with the queue depth it observed at each drain.
#[derive(Debug)]
pub(crate) struct DegradeController {
    above: usize,
    after: u32,
    resume_below: usize,
    resume_after: u32,
    pressured: u32,
    calm: u32,
    degraded: bool,
}

impl DegradeController {
    pub(crate) fn new(policy: &SloPolicy) -> Self {
        DegradeController {
            above: policy.degrade_above,
            after: policy.degrade_after.max(1),
            resume_below: policy.resume_below,
            resume_after: policy.resume_after.max(1),
            pressured: 0,
            calm: 0,
            degraded: false,
        }
    }

    /// Observe one dispatch-time queue depth; returns whether the
    /// engine should serve this batch degraded (energy-only).
    pub(crate) fn observe(&mut self, depth: usize) -> bool {
        if depth >= self.above {
            self.calm = 0;
            self.pressured = self.pressured.saturating_add(1);
            if self.pressured >= self.after {
                self.degraded = true;
            }
        } else if depth <= self.resume_below {
            self.pressured = 0;
            self.calm = self.calm.saturating_add(1);
            if self.calm >= self.resume_after {
                self.degraded = false;
            }
        } else {
            // In between the thresholds: hold the current mode, reset
            // both streaks (hysteresis).
            self.pressured = 0;
            self.calm = 0;
        }
        self.degraded
    }

    /// Current mode without observing a new depth.
    #[cfg(test)]
    pub(crate) fn is_degraded(&self) -> bool {
        self.degraded
    }
}

/// Circuit-breaker state: closed (normal) or open against one poisoned
/// snapshot version, serving from a known-good fallback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving the registry's current snapshot.
    Closed,
    /// `poisoned` failed repeatedly; batches are routed to `fallback`
    /// (the last version that served a request successfully) until a
    /// version other than `poisoned` succeeds.
    Open {
        /// The version the breaker tripped against.
        poisoned: u64,
        /// The last-good version batches are routed to instead.
        fallback: u64,
    },
}

/// Tracks consecutive model-eval failures per snapshot and routes
/// around a snapshot that keeps failing. Single-owner (the dispatcher
/// thread); results are fed in completion order.
#[derive(Debug)]
pub(crate) struct CircuitBreaker {
    threshold: u32,
    consecutive: u32,
    last_good: Option<u64>,
    state: BreakerState,
    trips: u64,
}

impl CircuitBreaker {
    pub(crate) fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold,
            consecutive: 0,
            last_good: None,
            state: BreakerState::Closed,
            trips: 0,
        }
    }

    /// The version batches should be served from, given the registry's
    /// current snapshot version.
    pub(crate) fn route(&self, current: u64) -> u64 {
        match self.state {
            // A version newer than the poisoned one gets a half-open
            // trial: serve it, and let its results close or re-trip.
            BreakerState::Open { poisoned, fallback } if current == poisoned => fallback,
            _ => current,
        }
    }

    /// Record one evaluated request against `version`. Returns `true`
    /// when this exact observation trips the breaker (so the caller can
    /// count trips).
    pub(crate) fn on_result(&mut self, version: u64, ok: bool) -> bool {
        if ok {
            self.consecutive = 0;
            self.last_good = Some(version);
            if let BreakerState::Open { poisoned, .. } = self.state {
                if version > poisoned {
                    // A publish newer than the poisoned snapshot is
                    // healthy — close. Success on the older fallback
                    // proves nothing about the poisoned version, so it
                    // keeps the breaker open.
                    self.state = BreakerState::Closed;
                }
            }
            return false;
        }
        self.consecutive = self.consecutive.saturating_add(1);
        if self.threshold == 0 || self.consecutive < self.threshold {
            return false;
        }
        self.consecutive = 0;
        // Trip only if there is a distinct known-good version to route
        // to; with no alternative, routing would be a no-op.
        match self.last_good {
            Some(good) if good != version => {
                self.state = BreakerState::Open { poisoned: version, fallback: good };
                self.trips += 1;
                true
            }
            _ => false,
        }
    }

    #[cfg(test)]
    pub(crate) fn state(&self) -> BreakerState {
        self.state
    }

    #[cfg(test)]
    pub(crate) fn trips(&self) -> u64 {
        self.trips
    }
}

/// Capped-exponential-backoff retry schedule for overloaded submits.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based), capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let mult = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(mult)
            .map(|d| d.min(self.max_backoff))
            .unwrap_or(self.max_backoff)
    }
}

/// A token bucket shared by all clients of one engine: each retry
/// withdraws a token, each first-try success deposits a fraction of
/// one. When the bucket is empty, retries fail fast — under sustained
/// overload the retry traffic decays to a small fraction of the real
/// traffic instead of multiplying it.
#[derive(Debug)]
pub struct RetryBudget {
    tokens_milli: AtomicI64,
    max_milli: i64,
    deposit_milli: i64,
}

impl RetryBudget {
    /// A budget of `max_tokens` retries, refilled at `deposit_per_success`
    /// tokens (may be fractional) per successful request.
    pub fn new(max_tokens: u32, deposit_per_success: f64) -> Self {
        let max_milli = i64::from(max_tokens) * 1000;
        RetryBudget {
            tokens_milli: AtomicI64::new(max_milli),
            max_milli,
            deposit_milli: (deposit_per_success.max(0.0) * 1000.0) as i64,
        }
    }

    /// Take one retry token; `false` means the budget is exhausted.
    pub fn try_withdraw(&self) -> bool {
        let prev = self.tokens_milli.fetch_sub(1000, Ordering::Relaxed);
        if prev < 1000 {
            // Undo: the bucket did not hold a whole token.
            self.tokens_milli.fetch_add(1000, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Credit one successful request.
    pub fn deposit(&self) {
        let prev = self.tokens_milli.fetch_add(self.deposit_milli, Ordering::Relaxed);
        if prev + self.deposit_milli > self.max_milli {
            self.tokens_milli.store(self.max_milli, Ordering::Relaxed);
        }
    }

    /// Whole tokens currently available.
    pub fn available(&self) -> u32 {
        (self.tokens_milli.load(Ordering::Relaxed).max(0) / 1000) as u32
    }
}

/// Submit with retries on [`ServeError::Overloaded`] only — every other
/// error (typed rejection, deadline miss, eval failure, closed engine)
/// is final and returned as-is. Backoff is capped exponential per
/// [`RetryPolicy`]; each retry must win a token from `budget`.
pub fn infer_with_retry(
    engine: &Engine,
    req: InferRequest,
    policy: &RetryPolicy,
    budget: &RetryBudget,
) -> Result<InferResponse, ServeError> {
    let mut attempt = 0u32;
    loop {
        match engine.submit(req.clone()) {
            Ok(ticket) => {
                let result = ticket.wait();
                if result.is_ok() {
                    budget.deposit();
                }
                return result;
            }
            Err(e @ ServeError::Overloaded { .. }) => {
                if attempt >= policy.max_retries || !budget.try_withdraw() {
                    return Err(e);
                }
                std::thread::sleep(policy.backoff(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_controller_has_hysteresis_on_both_edges() {
        let policy = SloPolicy {
            degrade_above: 10,
            degrade_after: 3,
            resume_below: 2,
            resume_after: 2,
            ..SloPolicy::default()
        };
        let mut d = DegradeController::new(&policy);
        assert!(!d.observe(50));
        assert!(!d.observe(50), "needs 3 consecutive pressured dispatches");
        assert!(d.observe(50), "third pressured dispatch degrades");
        assert!(d.observe(5), "mid-band holds the degraded mode");
        assert!(d.observe(1), "one calm dispatch is not enough");
        assert!(!d.observe(0), "second calm dispatch resumes");
        assert!(!d.is_degraded());
        // A pressure blip between calm runs resets the calm streak.
        assert!(!d.observe(50));
        assert!(!d.observe(1));
        assert!(!d.observe(50));
        assert!(!d.observe(50));
        assert!(d.observe(50), "streak restarted after the calm dispatch");
    }

    #[test]
    fn breaker_trips_after_threshold_and_routes_to_last_good() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.on_result(1, true));
        assert_eq!(b.route(2), 2);
        assert!(!b.on_result(2, false));
        assert!(!b.on_result(2, false));
        assert!(b.on_result(2, false), "third consecutive failure trips");
        assert_eq!(b.trips(), 1);
        assert_eq!(
            b.state(),
            BreakerState::Open { poisoned: 2, fallback: 1 }
        );
        assert_eq!(b.route(2), 1, "poisoned version is routed around");
        assert_eq!(b.route(3), 3, "a newer publish gets a half-open trial");
        // Success on the fallback keeps the breaker open against v2 …
        assert!(!b.on_result(1, true));
        assert_eq!(b.route(2), 1);
        // … and success on a new version closes it.
        assert!(!b.on_result(3, true));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.route(3), 3);
    }

    #[test]
    fn breaker_does_not_trip_without_an_alternative() {
        let mut b = CircuitBreaker::new(2);
        // Failures on the only version ever seen: nothing to route to.
        assert!(!b.on_result(1, false));
        assert!(!b.on_result(1, false));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn breaker_threshold_zero_disables() {
        let mut b = CircuitBreaker::new(0);
        b.on_result(1, true);
        for _ in 0..20 {
            assert!(!b.on_result(2, false));
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn retry_backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(9),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(2));
        assert_eq!(p.backoff(1), Duration::from_millis(4));
        assert_eq!(p.backoff(2), Duration::from_millis(8));
        assert_eq!(p.backoff(3), Duration::from_millis(9), "capped");
        assert_eq!(p.backoff(40), Duration::from_millis(9), "shift overflow capped");
    }

    #[test]
    fn retry_budget_bounds_retries_and_refills_on_success() {
        let b = RetryBudget::new(2, 0.5);
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "budget exhausted");
        b.deposit();
        assert!(!b.try_withdraw(), "half a token is not a retry");
        b.deposit();
        assert!(b.try_withdraw(), "two successes bought one retry");
        for _ in 0..100 {
            b.deposit();
        }
        assert_eq!(b.available(), 2, "deposits cap at the configured maximum");
    }
}
