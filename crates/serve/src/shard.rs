//! Sharded serving fleet with rendezvous (highest-random-weight)
//! routing.
//!
//! One engine saturates one dispatcher; "millions of users" need many.
//! A [`Fleet`] runs N independent [`Engine`] shards — each with its
//! own two-lane [`crate::batch::BatchQueue`], SLO policy, and stats —
//! and routes every request by its *model id*: all traffic for one
//! model lands on one shard, so that model's snapshot geometry cache
//! is warmed in exactly one place.
//!
//! ## Routing rule
//!
//! Rendezvous/HRW hashing: shard `s` serves model `m` iff
//! `rendezvous_score(m, s)` is the maximum over the shard set (ties
//! broken toward the lower shard id). The routing is a pure function
//! of `(model, shard set)` — no coordination, no routing table to keep
//! consistent — and carries the HRW minimal-remap property: removing a
//! shard remaps only the keys that shard owned, and adding one steals
//! only the keys it now wins. The property tests in
//! `tests/routing_property.rs` and the `fleet` verify family pin both
//! the contract and golden score values (so a flipped hash constant is
//! caught, not just a skewed distribution).
//!
//! ## Model placement
//!
//! All shards share one [`ModelTable`]: a publish is visible
//! everywhere immediately, so re-routing (shard death, fleet resize)
//! never loses a model — only its cache warmth. Exclusivity of
//! *traffic*, not of *data*, is what the routing provides. Responses
//! are bitwise identical to the single-engine path: the engine math
//! does not know the fleet exists.
//!
//! ## Failure containment
//!
//! Killing a shard shuts its engine down; requests routed to it
//! resolve with the typed [`ServeError::Closed`] — never a hang — and
//! the other shards keep serving. Callers that want availability over
//! pinning re-route with [`ShardSet::without`].

use crate::batch::{BatchPolicy, InferRequest, InferResponse, ServeError, Ticket};
use crate::chaos::ChaosPlan;
use crate::engine::Engine;
use crate::registry::ModelTable;
use crate::slo::SloPolicy;
use crate::stats::StatsSnapshot;
use crate::tenant::TenantTable;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Salt folded into every routing score. Part of the wire-visible
/// contract: changing it remaps every model in every deployed fleet,
/// and the `fleet` verify family pins golden scores against it.
pub const ROUTING_SALT: u64 = 0x6470_5f73_6572_7665; // "dp_serve"

/// splitmix64 finalizer — the same mixer the chaos plan and the verify
/// generators use, applied twice below so model and shard bits are
/// fully diffused before they meet.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The rendezvous weight of `(model, shard)`. Pure and stateless: the
/// whole routing contract derives from comparing these scores.
pub fn rendezvous_score(model: u64, shard: u32) -> u64 {
    mix(model ^ mix(u64::from(shard) ^ ROUTING_SALT))
}

/// An ordered set of shard ids (sorted, deduplicated) — the domain of
/// the routing function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSet {
    ids: Vec<u32>,
}

impl ShardSet {
    /// A set from arbitrary ids (sorted and deduplicated).
    pub fn new(ids: impl IntoIterator<Item = u32>) -> Self {
        let mut ids: Vec<u32> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        ShardSet { ids }
    }

    /// The ids `0..n`.
    pub fn contiguous(n: u32) -> Self {
        ShardSet { ids: (0..n).collect() }
    }

    /// The member ids, ascending.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of shards in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the set has no shards.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// This set minus `id` (the re-routing domain after a shard loss).
    pub fn without(&self, id: u32) -> ShardSet {
        ShardSet {
            ids: self.ids.iter().copied().filter(|&s| s != id).collect(),
        }
    }

    /// Route a model id: the member with the highest
    /// [`rendezvous_score`], ties toward the lower shard id. `None`
    /// only for an empty set.
    pub fn route(&self, model: u64) -> Option<u32> {
        self.ids
            .iter()
            .copied()
            .max_by_key(|&s| (rendezvous_score(model, s), std::cmp::Reverse(s)))
    }
}

/// Fleet geometry and per-shard policy.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of engine shards (ids `0..shards`), clamped to ≥ 1.
    pub shards: u32,
    /// The SLO policy every shard runs under.
    pub slo: SloPolicy,
    /// Chaos injection per shard (production passes
    /// [`ChaosPlan::none`]).
    pub chaos: ChaosPlan,
}

impl FleetConfig {
    /// `shards` engines under default batching and no overload limits.
    pub fn new(shards: u32) -> Self {
        FleetConfig {
            shards,
            slo: SloPolicy::unbounded(BatchPolicy::default()),
            chaos: ChaosPlan::none(),
        }
    }

    /// Override the per-shard SLO policy.
    pub fn with_slo(mut self, slo: SloPolicy) -> Self {
        self.slo = slo;
        self
    }

    /// Override the per-shard chaos plan.
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }
}

struct FleetShard {
    id: u32,
    engine: Arc<Engine>,
    alive: AtomicBool,
}

/// N independent engine shards behind one rendezvous router.
pub struct Fleet {
    shards: Vec<FleetShard>,
    set: ShardSet,
    models: Arc<ModelTable>,
    tenants: Arc<TenantTable>,
}

impl Fleet {
    /// Start `config.shards` engines over a shared model table and a
    /// shared tenant table. The table must hold at least one model.
    pub fn start(config: FleetConfig, models: Arc<ModelTable>) -> Fleet {
        let set = ShardSet::contiguous(config.shards.max(1));
        let tenants = Arc::new(TenantTable::new());
        let shards = set
            .ids()
            .iter()
            .map(|&id| FleetShard {
                id,
                engine: Engine::start_shard(
                    Arc::clone(&models),
                    config.slo,
                    config.chaos.clone(),
                    Arc::clone(&tenants),
                ),
                alive: AtomicBool::new(true),
            })
            .collect();
        Fleet { shards, set, models, tenants }
    }

    /// The configured shard set (the routing domain — killed shards
    /// stay members so their traffic fails typed instead of silently
    /// moving; see [`Fleet::kill`]).
    pub fn shard_set(&self) -> &ShardSet {
        &self.set
    }

    /// The shared model table (publish into it to hot-swap; insert to
    /// bring a new model online fleet-wide).
    pub fn models(&self) -> &Arc<ModelTable> {
        &self.models
    }

    /// The fleet-wide per-tenant accounting table.
    pub fn tenants(&self) -> &Arc<TenantTable> {
        &self.tenants
    }

    /// Which shard id serves `model`.
    pub fn route(&self, model: u64) -> u32 {
        self.set.route(model).expect("fleet has at least one shard")
    }

    /// The engine behind a shard id.
    pub fn engine(&self, shard: u32) -> Option<&Arc<Engine>> {
        self.shards.iter().find(|s| s.id == shard).map(|s| &s.engine)
    }

    /// `true` while the shard accepts traffic.
    pub fn is_alive(&self, shard: u32) -> bool {
        self.shards
            .iter()
            .find(|s| s.id == shard)
            .is_some_and(|s| s.alive.load(Ordering::Acquire))
    }

    /// Submit a request to the shard owning its model id. A request
    /// routed to a killed shard resolves with [`ServeError::Closed`].
    pub fn submit(&self, req: InferRequest) -> Result<Ticket, ServeError> {
        let shard = self.route(req.model);
        let s = self
            .shards
            .iter()
            .find(|s| s.id == shard)
            .expect("routed shard is a member of the fleet");
        s.engine.submit(req)
    }

    /// Submit and wait — the fleet-level [`Engine::infer`] analogue.
    pub fn infer(&self, req: InferRequest) -> Result<InferResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// Shut one shard down (idempotent). Its queued requests drain,
    /// new submissions to it resolve with [`ServeError::Closed`], and
    /// routing is *not* changed: pinned traffic fails typed rather
    /// than silently migrating to a cold shard. Returns `true` only
    /// when this call transitioned the shard from alive to dead;
    /// `false` for an already-dead or unknown shard id.
    pub fn kill(&self, shard: u32) -> bool {
        match self.shards.iter().find(|s| s.id == shard) {
            None => false,
            Some(s) => {
                let was_alive = s.alive.swap(false, Ordering::AcqRel);
                s.engine.shutdown();
                was_alive
            }
        }
    }

    /// Per-shard stats snapshots, ascending by shard id.
    pub fn stats_per_shard(&self) -> Vec<(u32, StatsSnapshot)> {
        self.shards.iter().map(|s| (s.id, s.engine.stats())).collect()
    }

    /// Shut every shard down (idempotent; also runs on drop).
    pub fn shutdown(&self) {
        for s in &self.shards {
            s.alive.store(false, Ordering::Release);
            s.engine.shutdown();
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{demo_frame as frame, demo_model as model};
    use crate::registry::ModelRegistry;

    #[test]
    fn routing_is_pure_and_total() {
        let set = ShardSet::contiguous(5);
        for m in 0..200u64 {
            let a = set.route(m).unwrap();
            let b = set.route(m).unwrap();
            assert_eq!(a, b, "routing must be deterministic");
            assert!(set.contains(a));
        }
        assert_eq!(ShardSet::new([]).route(7), None);
        assert_eq!(ShardSet::contiguous(1).route(12345), Some(0));
    }

    #[test]
    fn removing_a_shard_remaps_only_its_keys() {
        let set = ShardSet::contiguous(6);
        let gone = 3u32;
        let reduced = set.without(gone);
        assert_eq!(reduced.ids(), &[0, 1, 2, 4, 5]);
        for m in 0..500u64 {
            let before = set.route(m).unwrap();
            let after = reduced.route(m).unwrap();
            if before != gone {
                assert_eq!(before, after, "model {m} moved although its shard survived");
            } else {
                assert_ne!(after, gone);
            }
        }
    }

    #[test]
    fn shard_set_normalizes_ids() {
        let s = ShardSet::new([4, 1, 4, 2, 1]);
        assert_eq!(s.ids(), &[1, 2, 4]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.contains(2) && !s.contains(3));
    }

    #[test]
    fn fleet_serves_bitwise_and_kill_is_typed() {
        let models = ModelTable::single(Arc::new(ModelRegistry::new(model(31))));
        models.insert(1, Arc::new(ModelRegistry::new(model(32))));
        let fleet = Fleet::start(FleetConfig::new(3), Arc::clone(&models));
        let f = frame(17);
        for id in [0u64, 1] {
            let direct = models.get(id).unwrap().current().model.predict(&f);
            let resp = fleet
                .infer(InferRequest::new(f.clone(), true).for_model(id))
                .unwrap();
            assert_eq!(resp.energy.to_bits(), direct.energy.to_bits());
            for (a, b) in resp.forces.unwrap().iter().zip(&direct.forces) {
                assert_eq!(a.0.map(f64::to_bits), b.0.map(f64::to_bits));
            }
        }
        // Kill the shard owning model 0: its traffic fails typed, the
        // other models keep serving.
        let owner = fleet.route(0);
        assert!(fleet.kill(owner));
        assert!(!fleet.is_alive(owner));
        assert_eq!(
            fleet.infer(InferRequest::new(f.clone(), false)).unwrap_err(),
            ServeError::Closed
        );
        let survivor = fleet.route(1);
        if survivor != owner {
            assert!(fleet.infer(InferRequest::new(f, false).for_model(1)).is_ok());
        }
        fleet.shutdown();
    }
}
