//! Fleet serving benchmark: open-loop, multi-tenant, sharded.
//!
//! Writes `BENCH_serve_fleet.json` (schema in `dp_bench::report`). For
//! each shard count, two tenants drive the fleet *open-loop*: requests
//! are issued on a bounded-Pareto arrival clock
//! (`dp_bench::load::OpenLoop`, `u^-0.8` capped at 100× the base gap)
//! that never waits for completions — a drainer thread collects the
//! tickets — so the recorded tail is the tail of the fleet, not of a
//! politely self-throttling client. Tenant 1 is interactive
//! (energy+forces); tenant 2 rides the bulk lane at a faster arrival
//! clock (energy-only).
//!
//! Report rows, per shard count:
//!
//! * `serve_fleet_requests_per_s` — completed requests per wall-clock
//!   second, shape `[shards]`;
//! * `serve_fleet_{p50_ns,p99_ns,p999_ns,requests,ok,errors,degraded}`
//!   — per-tenant end-to-end latency percentiles and outcome counters,
//!   shape `[tenant_id, shards]`.
//!
//! Flags: `--smoke` (fewer requests, for CI), `--out=DIR` (default
//! `results/bench`).

use dp_bench::load::{BoundedPareto, OpenLoop};
use dp_bench::report::BenchReport;
use dp_serve::demo::{demo_frame, demo_model};
use dp_serve::shard::{Fleet, FleetConfig};
use dp_serve::{InferRequest, ModelRegistry, ModelTable};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Opts {
    smoke: bool,
    out: PathBuf,
}

fn parse_opts() -> Opts {
    let mut o = Opts { smoke: false, out: PathBuf::from("results/bench") };
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            o.smoke = true;
        } else if let Some(v) = arg.strip_prefix("--out=") {
            o.out = PathBuf::from(v);
        } else if arg == "--help" || arg == "-h" {
            eprintln!("flags: --smoke --out=DIR");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag '{arg}' (try --help)");
            std::process::exit(2);
        }
    }
    o
}

const MODEL_IDS: [u64; 3] = [0, 7, 42];

/// (tenant id, base inter-arrival gap, bulk lane, want forces)
const TENANTS: [(u64, Duration, bool, bool); 2] = [
    (1, Duration::from_micros(300), false, true),
    (2, Duration::from_micros(150), true, false),
];

fn main() {
    let opts = parse_opts();
    let per_tenant = if opts.smoke { 150 } else { 1500 };
    let shard_counts: &[u32] = if opts.smoke { &[1, 3] } else { &[1, 2, 4, 8] };
    let threads = dp_pool::current_threads();
    let mut rep = BenchReport::new("serve_fleet");

    for &shards in shard_counts {
        let models = ModelTable::with_models(
            MODEL_IDS
                .iter()
                .map(|&id| (id, Arc::new(ModelRegistry::new(demo_model(id + 1))))),
        );
        let fleet = Arc::new(Fleet::start(FleetConfig::new(shards), models));

        let t0 = Instant::now();
        let generators: Vec<_> = TENANTS
            .iter()
            .enumerate()
            .map(|(t_idx, &(tenant, base_gap, bulk, forces))| {
                let fleet = Arc::clone(&fleet);
                std::thread::spawn(move || {
                    // Open loop: the arrival clock never waits for a
                    // response; a drainer owns the tickets.
                    let (tx, rx) = mpsc::channel();
                    let drainer = std::thread::spawn(move || {
                        let mut ok = 0u64;
                        for ticket in rx {
                            let resp: Result<_, _> = dp_serve::Ticket::wait(ticket);
                            if let Ok(r) = resp {
                                assert!(r.energy.is_finite());
                                ok += 1;
                            }
                        }
                        ok
                    });
                    let mut clock = OpenLoop::new(
                        BoundedPareto::serving_default(base_gap),
                        0x10ad_0000 + tenant,
                    );
                    for i in 0..per_tenant {
                        std::thread::sleep(clock.next_gap());
                        let model = MODEL_IDS[(t_idx + i) % MODEL_IDS.len()];
                        let mut req = InferRequest::new(demo_frame((i % 12) as u64), forces)
                            .for_model(model)
                            .from_tenant(tenant);
                        if bulk {
                            req = req.bulk();
                        }
                        let ticket = fleet.submit(req).expect("live fleet must accept");
                        tx.send(ticket).expect("drainer alive");
                    }
                    drop(tx);
                    drainer.join().expect("drainer must not panic")
                })
            })
            .collect();

        let mut completed = 0u64;
        for g in generators {
            completed += g.join().expect("generator must not panic");
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let total = (TENANTS.len() * per_tenant) as u64;
        assert_eq!(completed, total, "open-loop run must complete every request");
        let rps = completed as f64 / secs;

        rep.push("serve_fleet_requests_per_s", &[shards as usize], threads, rps, total as usize);
        fleet.tenants().report_into(&mut rep, "serve_fleet", shards as usize);
        for (tenant, snap) in fleet.tenants().snapshots() {
            eprintln!(
                "shards={shards} tenant={tenant}: p50 {:.0} ns, p99 {:.0} ns, p999 {:.0} ns \
                 ({} requests, {} ok)",
                snap.p50_ns.unwrap_or(0.0),
                snap.p99_ns.unwrap_or(0.0),
                snap.p999_ns.unwrap_or(0.0),
                snap.requests,
                snap.ok
            );
        }
        eprintln!("shards={shards}: {rps:.0} req/s over {total} open-loop requests");
        fleet.shutdown();
    }

    let path = opts.out.join("BENCH_serve_fleet.json");
    rep.write(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!("wrote {} ({} records)", path.display(), rep.records.len());
}
