//! Serving throughput and latency benchmark.
//!
//! Writes `BENCH_serve.json` (schema in `dp_bench::report`): for each
//! `max_batch` ∈ {1, 8, 32}, four client threads drive the engine with
//! energy+force requests over a fixed working set of geometries, and
//! the report records
//!
//! * `serve_requests_per_s` — completed requests per wall-clock second
//!   (stored in the `median_ns` field; the name says what it is);
//! * `serve_p50_ns` / `serve_p90_ns` / `serve_p99_ns` — end-to-end
//!   submission-to-response latency percentiles;
//! * `serve_mean_batch`, `serve_cache_hit_rate` — how well the
//!   coalescer and the geometry cache are doing.
//!
//! The `shape` column carries `[max_batch]`. Flags: `--smoke` (fewer
//! requests, for CI), `--out=DIR` (default `results/bench`).

use dp_bench::report::BenchReport;
use dp_serve::demo::{demo_frame, demo_model};
use dp_serve::{BatchPolicy, Engine, ModelRegistry};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Opts {
    smoke: bool,
    out: PathBuf,
}

fn parse_opts() -> Opts {
    let mut o = Opts { smoke: false, out: PathBuf::from("results/bench") };
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            o.smoke = true;
        } else if let Some(v) = arg.strip_prefix("--out=") {
            o.out = PathBuf::from(v);
        } else if arg == "--help" || arg == "-h" {
            eprintln!("flags: --smoke --out=DIR");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag '{arg}' (try --help)");
            std::process::exit(2);
        }
    }
    o
}

const CLIENTS: usize = 4;
const BATCH_SIZES: &[usize] = &[1, 8, 32];

fn main() {
    let opts = parse_opts();
    let total = if opts.smoke { 64 } else { 512 };
    let per_client = total / CLIENTS;
    let frames: Vec<_> = (0..16).map(demo_frame).collect();
    let threads = dp_pool::current_threads();
    let mut rep = BenchReport::new("serve");

    for &max_batch in BATCH_SIZES {
        let registry = Arc::new(ModelRegistry::new(demo_model(1)));
        let engine = Engine::start(
            registry,
            BatchPolicy {
                max_batch,
                max_wait: Duration::from_micros(500),
            },
        );
        let barrier = Arc::new(Barrier::new(CLIENTS + 1));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                let frames = frames.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..per_client {
                        let f = frames[(c * per_client + i) % frames.len()].clone();
                        let resp = engine.infer(f, true).expect("live engine must serve");
                        assert!(resp.energy.is_finite());
                    }
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        for c in clients {
            c.join().expect("client thread must not panic");
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let rps = (CLIENTS * per_client) as f64 / secs;

        rep.push("serve_requests_per_s", &[max_batch], threads, rps, CLIENTS * per_client);
        // No swap happened, so the current snapshot's cache counters
        // were never folded into the engine accumulators; fold them by
        // hand before exporting (the engine is idle and about to stop).
        let live = engine.registry().current().cache.stats();
        engine.raw_stats().record_cache(live.hits, live.misses);
        engine
            .raw_stats()
            .report_into(&mut rep, "serve", max_batch, threads, engine.registry().swap_count());
        engine.shutdown();
        eprintln!(
            "max_batch={max_batch}: {rps:.0} req/s over {} requests ({CLIENTS} clients)",
            CLIENTS * per_client
        );
    }

    let path = opts.out.join("BENCH_serve.json");
    rep.write(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!("wrote {} ({} records)", path.display(), rep.records.len());
}
