//! Serving throughput and latency benchmark.
//!
//! Writes `BENCH_serve.json` (schema in `dp_bench::report`): for each
//! `max_batch` ∈ {1, 8, 32}, four client threads drive the engine with
//! energy+force requests over a fixed working set of geometries, and
//! the report records
//!
//! * `serve_requests_per_s` — completed requests per wall-clock second
//!   (stored in the `median_ns` field; the name says what it is);
//! * `serve_p50_ns` / `serve_p90_ns` / `serve_p99_ns` — end-to-end
//!   submission-to-response latency percentiles;
//! * `serve_mean_batch`, `serve_cache_hit_rate` — how well the
//!   coalescer and the geometry cache are doing.
//!
//! The `shape` column carries `[max_batch]`. Flags: `--smoke` (fewer
//! requests, for CI), `--out=DIR` (default `results/bench`).
//!
//! A second sweep measures the *fidelity tiers* on a paper-sized model
//! (`demo_model_paper`, where the embedding net dominates and the
//! compressed/quantized tiers earn their keep): the same client rig
//! pins every request to one tier — master with forces, compressed
//! with forces, quantized energy-only — and the report records, per
//! tier, `serve_fidelity_requests_per_s` (shape `[tier]` with
//! 0=master, 1=compressed, 2=quantized) plus the accuracy budget the
//! speedup buys: `serve_fidelity_energy_err_ev_atom` (max per-atom
//! energy error vs the master over the working set) and, for the
//! compressed tier, `serve_fidelity_force_err_ev_a` (max force
//! component error).

use dp_bench::report::BenchReport;
use dp_serve::demo::{demo_frame, demo_frame_paper, demo_model, demo_model_paper};
use dp_serve::{BatchPolicy, Engine, Fidelity, InferRequest, ModelRegistry};
use deepmd_core::compress::{CompressSpec, CompressedModel};
use deepmd_core::quant::QuantizedModel;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Opts {
    smoke: bool,
    out: PathBuf,
}

fn parse_opts() -> Opts {
    let mut o = Opts { smoke: false, out: PathBuf::from("results/bench") };
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            o.smoke = true;
        } else if let Some(v) = arg.strip_prefix("--out=") {
            o.out = PathBuf::from(v);
        } else if arg == "--help" || arg == "-h" {
            eprintln!("flags: --smoke --out=DIR");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag '{arg}' (try --help)");
            std::process::exit(2);
        }
    }
    o
}

const CLIENTS: usize = 4;
const BATCH_SIZES: &[usize] = &[1, 8, 32];

fn main() {
    let opts = parse_opts();
    let total = if opts.smoke { 64 } else { 512 };
    let per_client = total / CLIENTS;
    let frames: Vec<_> = (0..16).map(demo_frame).collect();
    let threads = dp_pool::current_threads();
    let mut rep = BenchReport::new("serve");

    for &max_batch in BATCH_SIZES {
        let registry = Arc::new(ModelRegistry::new(demo_model(1)));
        let engine = Engine::start(
            registry,
            BatchPolicy {
                max_batch,
                max_wait: Duration::from_micros(500),
            },
        );
        let barrier = Arc::new(Barrier::new(CLIENTS + 1));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                let frames = frames.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..per_client {
                        let f = frames[(c * per_client + i) % frames.len()].clone();
                        let resp = engine.infer(f, true).expect("live engine must serve");
                        assert!(resp.energy.is_finite());
                    }
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        for c in clients {
            c.join().expect("client thread must not panic");
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let rps = (CLIENTS * per_client) as f64 / secs;

        rep.push("serve_requests_per_s", &[max_batch], threads, rps, CLIENTS * per_client);
        // No swap happened, so the current snapshot's cache counters
        // were never folded into the engine accumulators; fold them by
        // hand before exporting (the engine is idle and about to stop).
        let live = engine.registry().current().cache.stats();
        engine.raw_stats().record_cache(live.hits, live.misses);
        engine
            .raw_stats()
            .report_into(&mut rep, "serve", max_batch, threads, engine.registry().swap_count());
        engine.shutdown();
        eprintln!(
            "max_batch={max_batch}: {rps:.0} req/s over {} requests ({CLIENTS} clients)",
            CLIENTS * per_client
        );
    }

    // ── Fidelity sweep ───────────────────────────────────────────────
    // Paper-sized model: the embedding net dominates serving cost here,
    // so this measures the speedup the cheap tiers buy in production
    // shapes, alongside the accuracy budget they spend for it.
    let master = demo_model_paper(1);
    let frames: Vec<_> = (0..16).map(demo_frame_paper).collect();
    let compressed = CompressedModel::compress(&master, &CompressSpec::default())
        .expect("paper-sized demo model must compress");
    let quantized =
        QuantizedModel::quantize(&compressed, &frames).expect("compressed model must quantize");

    // Accuracy budget over the whole working set, measured directly
    // (not through the engine, so queueing never perturbs the numbers).
    let mut comp_e_err = 0.0f64;
    let mut comp_f_err = 0.0f64;
    let mut quant_e_err = 0.0f64;
    for f in &frames {
        let n = f.types.len() as f64;
        let pass = master.forward(f);
        let fm = master.forces(&pass);
        let cpass = compressed.forward(f);
        comp_e_err = comp_e_err.max((cpass.energy - pass.energy).abs() / n);
        for (a, b) in compressed.forces(&cpass).iter().zip(&fm) {
            for c in 0..3 {
                comp_f_err = comp_f_err.max((a.0[c] - b.0[c]).abs());
            }
        }
        quant_e_err = quant_e_err.max((quantized.energy(f) - pass.energy).abs() / n);
    }

    let registry = Arc::new(ModelRegistry::new(master.clone()));
    registry
        .publish_with_artifacts(master, Some(compressed), Some(quantized))
        .expect("tiered publish must succeed");
    let engine = Engine::start(
        Arc::clone(&registry),
        BatchPolicy { max_batch: 8, max_wait: Duration::from_micros(500) },
    );

    let tiers: [(usize, Fidelity, bool, &str); 3] = [
        (0, Fidelity::Master, true, "master"),
        (1, Fidelity::Compressed, true, "compressed"),
        (2, Fidelity::Quantized, false, "quantized"),
    ];
    let mut master_rps = 0.0f64;
    for (tier, fidelity, want_forces, name) in tiers {
        let barrier = Arc::new(Barrier::new(CLIENTS + 1));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                let frames = frames.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..per_client {
                        let f = frames[(c * per_client + i) % frames.len()].clone();
                        let req = InferRequest::new(f, want_forces).with_fidelity(fidelity);
                        let resp = engine
                            .submit(req)
                            .expect("live engine must accept")
                            .wait()
                            .expect("live engine must serve");
                        assert!(resp.energy.is_finite());
                        assert_eq!(resp.fidelity, fidelity, "pinned tier must serve");
                    }
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        for c in clients {
            c.join().expect("client thread must not panic");
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let rps = (CLIENTS * per_client) as f64 / secs;
        if tier == 0 {
            master_rps = rps;
        }
        rep.push("serve_fidelity_requests_per_s", &[tier], threads, rps, CLIENTS * per_client);
        eprintln!(
            "fidelity {name}: {rps:.0} req/s ({:.2}x master)",
            rps / master_rps.max(1e-9)
        );
    }
    engine.shutdown();
    rep.push("serve_fidelity_energy_err_ev_atom", &[1], threads, comp_e_err, frames.len());
    rep.push("serve_fidelity_force_err_ev_a", &[1], threads, comp_f_err, frames.len());
    rep.push("serve_fidelity_energy_err_ev_atom", &[2], threads, quant_e_err, frames.len());
    eprintln!(
        "accuracy budget: compressed {comp_e_err:.2e} eV/atom, {comp_f_err:.2e} eV/A force; \
         quantized {quant_e_err:.2e} eV/atom"
    );

    let path = opts.out.join("BENCH_serve.json");
    rep.write(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!("wrote {} ({} records)", path.display(), rep.records.len());
}
