//! CI smoke test for the serving engine: 64 requests from 4 client
//! threads against a live engine, one mid-run hot-swap, and a stats
//! sanity pass — then a tiered publish (master + compressed +
//! quantized) with fidelity-routing assertions: pins serve their tier,
//! the quantized tier never serves forces, and auto-routing picks the
//! cheap tiers. Any violated invariant panics (nonzero exit), so
//! `scripts/ci.sh` can gate on it directly.

use deepmd_core::compress::{CompressSpec, CompressedModel};
use deepmd_core::quant::QuantizedModel;
use dp_serve::demo::{demo_frame, demo_model};
use dp_serve::{BatchPolicy, Engine, Fidelity, InferRequest, ModelRegistry};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const CLIENTS: usize = 4;
const PER_CLIENT: usize = 16;
const GEOMETRIES: u64 = 8;

fn main() {
    let registry = Arc::new(ModelRegistry::new(demo_model(1)));
    let engine = Engine::start(
        Arc::clone(&registry),
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
        },
    );

    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut versions = Vec::with_capacity(PER_CLIENT);
                for i in 0..PER_CLIENT {
                    let f = demo_frame((c * PER_CLIENT + i) as u64 % GEOMETRIES);
                    let resp = engine.infer(f, i % 2 == 0).expect("live engine must serve");
                    assert!(resp.energy.is_finite(), "served energy must be finite");
                    if let Some(forces) = &resp.forces {
                        assert!(forces.iter().all(|f| f.0.iter().all(|v| v.is_finite())));
                    }
                    versions.push(resp.version);
                }
                versions
            })
        })
        .collect();

    barrier.wait();
    // Hot-swap while the clients are in flight.
    std::thread::sleep(Duration::from_millis(2));
    registry.publish(demo_model(2)).expect("publish must succeed");

    let mut versions = Vec::new();
    for c in clients {
        let served = c.join().expect("client thread must not panic");
        assert!(
            served.windows(2).all(|w| w[0] <= w[1]),
            "a client's observed versions must be monotone: {served:?}"
        );
        versions.extend(served);
    }
    assert_eq!(versions.len(), CLIENTS * PER_CLIENT);
    assert!(versions.iter().all(|&v| v == 1 || v == 2), "unknown version served");
    // Anything submitted after the swap resolved must see version 2.
    assert_eq!(engine.infer(demo_frame(0), true).unwrap().version, 2);

    let stats = engine.stats();
    let total = (CLIENTS * PER_CLIENT + 1) as u64;
    assert_eq!(stats.requests, total);
    assert_eq!(stats.swaps, 1);
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
    assert!(stats.mean_batch >= 1.0);
    let p50 = stats.latency_p50_ns.expect("latency histogram populated");
    let p99 = stats.latency_p99_ns.unwrap();
    assert!(p50 > 0.0 && p99 >= p50);
    assert!(
        stats.cache_hit_rate > 0.0,
        "{total} requests over {GEOMETRIES} geometries must hit the cache: {stats:?}"
    );
    engine.shutdown();

    // ── Fidelity routing over a tiered publish ───────────────────────
    let master = demo_model(3);
    let compressed = CompressedModel::compress(&master, &CompressSpec::default())
        .expect("demo model must compress");
    let calib: Vec<_> = (0..4).map(demo_frame).collect();
    let quantized =
        QuantizedModel::quantize(&compressed, &calib).expect("compressed model must quantize");
    registry
        .publish_with_artifacts(master, Some(compressed), Some(quantized))
        .expect("tiered publish must succeed");
    let engine = Engine::start(
        Arc::clone(&registry),
        BatchPolicy { max_batch: 8, max_wait: Duration::from_millis(1) },
    );
    let submit = |fidelity, want_forces| {
        let req = InferRequest::new(demo_frame(0), want_forces).with_fidelity(fidelity);
        engine.submit(req).expect("must accept").wait().expect("must serve")
    };
    // Pins serve exactly their tier.
    for fidelity in [Fidelity::Master, Fidelity::Compressed, Fidelity::Quantized] {
        let resp = submit(fidelity, false);
        assert_eq!(resp.fidelity, fidelity, "pinned tier must serve the request");
        assert!(resp.energy.is_finite());
    }
    // Auto policy: force requests ride the compressed tier, energy-only
    // the quantized one.
    let auto_forces = submit(Fidelity::Auto, true);
    assert_eq!(auto_forces.fidelity, Fidelity::Compressed);
    assert!(auto_forces.forces.is_some(), "compressed tier serves forces");
    let auto_energy = submit(Fidelity::Auto, false);
    assert_eq!(auto_energy.fidelity, Fidelity::Quantized);
    // The quantized tier never serves forces: a pinned force request is
    // answered energy-only and flagged degraded.
    let q_forces = submit(Fidelity::Quantized, true);
    assert!(q_forces.forces.is_none(), "quantized tier must refuse forces");
    assert!(q_forces.degraded, "dropped forces must be flagged");
    engine.shutdown();

    println!(
        "serve smoke OK: {} requests in {} batches (mean {:.2}), p50 {:.0} ns, p99 {:.0} ns, \
         1 hot-swap, cache hit rate {:.2}, fidelity routing over a tiered publish OK",
        stats.requests, stats.batches, stats.mean_batch, p50, p99, stats.cache_hit_rate
    );
}
