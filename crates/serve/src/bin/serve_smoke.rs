//! CI smoke test for the serving engine: 64 requests from 4 client
//! threads against a live engine, one mid-run hot-swap, and a stats
//! sanity pass. Any violated invariant panics (nonzero exit), so
//! `scripts/ci.sh` can gate on it directly.

use dp_serve::demo::{demo_frame, demo_model};
use dp_serve::{BatchPolicy, Engine, ModelRegistry};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const CLIENTS: usize = 4;
const PER_CLIENT: usize = 16;
const GEOMETRIES: u64 = 8;

fn main() {
    let registry = Arc::new(ModelRegistry::new(demo_model(1)));
    let engine = Engine::start(
        Arc::clone(&registry),
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
        },
    );

    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut versions = Vec::with_capacity(PER_CLIENT);
                for i in 0..PER_CLIENT {
                    let f = demo_frame((c * PER_CLIENT + i) as u64 % GEOMETRIES);
                    let resp = engine.infer(f, i % 2 == 0).expect("live engine must serve");
                    assert!(resp.energy.is_finite(), "served energy must be finite");
                    if let Some(forces) = &resp.forces {
                        assert!(forces.iter().all(|f| f.0.iter().all(|v| v.is_finite())));
                    }
                    versions.push(resp.version);
                }
                versions
            })
        })
        .collect();

    barrier.wait();
    // Hot-swap while the clients are in flight.
    std::thread::sleep(Duration::from_millis(2));
    registry.publish(demo_model(2)).expect("publish must succeed");

    let mut versions = Vec::new();
    for c in clients {
        let served = c.join().expect("client thread must not panic");
        assert!(
            served.windows(2).all(|w| w[0] <= w[1]),
            "a client's observed versions must be monotone: {served:?}"
        );
        versions.extend(served);
    }
    assert_eq!(versions.len(), CLIENTS * PER_CLIENT);
    assert!(versions.iter().all(|&v| v == 1 || v == 2), "unknown version served");
    // Anything submitted after the swap resolved must see version 2.
    assert_eq!(engine.infer(demo_frame(0), true).unwrap().version, 2);

    let stats = engine.stats();
    let total = (CLIENTS * PER_CLIENT + 1) as u64;
    assert_eq!(stats.requests, total);
    assert_eq!(stats.swaps, 1);
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
    assert!(stats.mean_batch >= 1.0);
    let p50 = stats.latency_p50_ns.expect("latency histogram populated");
    let p99 = stats.latency_p99_ns.unwrap();
    assert!(p50 > 0.0 && p99 >= p50);
    assert!(
        stats.cache_hit_rate > 0.0,
        "{total} requests over {GEOMETRIES} geometries must hit the cache: {stats:?}"
    );
    engine.shutdown();

    println!(
        "serve smoke OK: {} requests in {} batches (mean {:.2}), p50 {:.0} ns, p99 {:.0} ns, \
         1 hot-swap, cache hit rate {:.2}",
        stats.requests, stats.batches, stats.mean_batch, p50, p99, stats.cache_hit_rate
    );
}
