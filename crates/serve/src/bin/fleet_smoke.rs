//! CI smoke test for the sharded serving fleet: 3 shards, 3 models,
//! 2 tenants hammering the fleet from 4 client threads *through the
//! wire protocol*, one mid-run publish over a wire frame, then one
//! shard killed. Every assertion is an invariant of the fleet design:
//! traffic pinned to a dead shard fails with the typed `Closed` (never
//! a hang, never silent migration), surviving shards keep serving, the
//! health and stats frames tell the truth, and per-tenant accounting
//! adds up. Any violation panics (nonzero exit), so `scripts/ci.sh`
//! gates on it directly.

use dp_serve::demo::{demo_frame, demo_model};
use dp_serve::shard::{Fleet, FleetConfig};
use dp_serve::wire::{
    self, decode, decode_infer_reply, encode_infer, Frame, Loopback, WireClient, WireServer,
};
use dp_serve::{InferRequest, ModelRegistry, ModelTable, ServeError};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const MODEL_IDS: [u64; 3] = [0, 7, 42];
const TENANTS: [u64; 2] = [1, 2];
const CLIENTS: usize = 4;
const PER_CLIENT: usize = 24;

fn main() {
    let models = ModelTable::with_models(
        MODEL_IDS
            .iter()
            .map(|&id| (id, Arc::new(ModelRegistry::new(demo_model(id + 1))))),
    );
    let fleet = Arc::new(Fleet::start(FleetConfig::new(3), models));

    // ── Phase 1: concurrent wire traffic + a mid-run publish ─────────
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let fleet = Arc::clone(&fleet);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let loopback = Loopback::new(&fleet);
                let tenant = TENANTS[c % TENANTS.len()];
                barrier.wait();
                let mut ok = 0u64;
                for i in 0..PER_CLIENT {
                    let model = MODEL_IDS[(c + i) % MODEL_IDS.len()];
                    let req = InferRequest::new(demo_frame((i % 6) as u64), i % 2 == 0)
                        .for_model(model)
                        .from_tenant(tenant);
                    let reply = loopback.call(&encode_infer(&req));
                    let resp = decode_infer_reply(&reply)
                        .expect("reply frame must decode")
                        .expect("live fleet must serve");
                    assert!(resp.energy.is_finite(), "served energy must be finite");
                    ok += 1;
                }
                (tenant, ok)
            })
        })
        .collect();

    barrier.wait();
    std::thread::sleep(Duration::from_millis(1));
    // Publish a new snapshot for model 7 over the wire, mid-traffic.
    let loopback = Loopback::new(&fleet);
    let blob = deepmd_core::model_io::to_bytes(&demo_model(777));
    match decode(&loopback.call(&wire::encode_publish(7, &blob))).expect("publish reply") {
        Frame::PublishOk { model: 7, version: 2 } => {}
        other => panic!("mid-run publish failed: {other:?}"),
    }

    let mut per_tenant = std::collections::BTreeMap::new();
    for c in clients {
        let (tenant, ok) = c.join().expect("client thread must not panic");
        *per_tenant.entry(tenant).or_insert(0u64) += ok;
    }
    // Anything after the publish serves version 2 of model 7.
    let req = InferRequest::new(demo_frame(0), false).for_model(7);
    let resp = decode_infer_reply(&loopback.call(&encode_infer(&req))).unwrap().unwrap();
    assert_eq!(resp.version, 2, "post-publish traffic must see the new snapshot");

    // Tenant accounting adds up: every client's successes are visible
    // in its tenant's counters.
    let snapshots = fleet.tenants().snapshots();
    for &tenant in &TENANTS {
        let snap = snapshots
            .iter()
            .find(|(id, _)| *id == tenant)
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("tenant {tenant} missing from the table"));
        let sent = per_tenant[&tenant];
        assert!(
            snap.ok >= sent,
            "tenant {tenant}: {} ok recorded, {sent} sent",
            snap.ok
        );
        assert_eq!(snap.errors, 0, "tenant {tenant} saw no failures in phase 1");
    }

    // ── Phase 2: kill one shard; typed failure, no migration ─────────
    let victim_model = MODEL_IDS[2];
    let victim_shard = fleet.route(victim_model);
    assert!(fleet.kill(victim_shard), "first kill must report true");
    assert!(!fleet.kill(victim_shard), "second kill is a no-op");

    let req = InferRequest::new(demo_frame(1), false).for_model(victim_model).from_tenant(1);
    let reply = loopback.call(&encode_infer(&req));
    assert_eq!(
        decode_infer_reply(&reply).unwrap().unwrap_err(),
        ServeError::Closed,
        "traffic pinned to a dead shard must fail typed, not migrate"
    );
    let mut survivors = 0;
    for &m in MODEL_IDS.iter().filter(|&&m| fleet.route(m) != victim_shard) {
        let req = InferRequest::new(demo_frame(2), true).for_model(m);
        let resp = decode_infer_reply(&loopback.call(&encode_infer(&req))).unwrap();
        assert!(resp.is_ok(), "model {m} on a surviving shard must keep serving");
        survivors += 1;
    }

    // Health over the wire reflects the kill.
    match decode(&loopback.call(&wire::encode_health())).expect("health reply") {
        Frame::HealthOk(h) => {
            assert_eq!(h.shards, 3);
            assert_eq!(h.alive, 2, "one shard was killed");
            assert_eq!(h.models, 3);
            // The two named tenants plus the default tenant 0 that the
            // un-attributed phase-2 probes land under.
            assert_eq!(h.tenants as usize, TENANTS.len() + 1);
        }
        other => panic!("expected HealthOk, got {other:?}"),
    }
    // Per-shard stats frames: the fleet served everything somewhere.
    let mut wire_requests = 0u64;
    for &shard in fleet.shard_set().ids() {
        match decode(&loopback.call(&wire::encode_stats_query(shard))).expect("stats reply") {
            Frame::Stats(s) => wire_requests += s.requests,
            other => panic!("expected Stats for shard {shard}, got {other:?}"),
        }
    }
    // Everything served: the client streams, the post-publish probe,
    // and the survivor probes. The dead-shard request was refused at
    // submit, so no shard ever counted it.
    let sent_total = (CLIENTS * PER_CLIENT) as u64 + 1 + survivors;
    assert!(
        wire_requests >= sent_total,
        "shards account {wire_requests} requests, clients sent at least {sent_total}"
    );
    // Unknown shard and a corrupt frame are typed errors, not hangs.
    match decode(&loopback.call(&wire::encode_stats_query(99))).unwrap() {
        Frame::Error(e) => assert!(matches!(e.to_error(), ServeError::BadRequest(_))),
        other => panic!("unknown shard gave {other:?}"),
    }
    let mut bad = encode_infer(&InferRequest::new(demo_frame(0), false));
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    match decode(&loopback.call(&bad)).unwrap() {
        Frame::Error(e) => assert!(matches!(e.to_error(), ServeError::BadRequest(_))),
        other => panic!("corrupt frame gave {other:?}"),
    }

    // ── Phase 3: the same frames over a real socket ──────────────────
    let sock = std::env::temp_dir().join(format!("dp-fleet-smoke-{}.sock", std::process::id()));
    let mut server = WireServer::bind(Arc::clone(&fleet), &sock).expect("bind UDS");
    let mut client = WireClient::connect(&sock).expect("connect UDS");
    let req = InferRequest::new(demo_frame(3), true).for_model(0).from_tenant(2);
    let reply = client.call(&encode_infer(&req)).expect("socket round trip");
    let resp = decode_infer_reply(&reply).unwrap().expect("fleet serves over UDS");
    assert!(resp.energy.is_finite() && resp.forces.is_some());
    drop(client);
    server.shutdown();

    let alive = fleet
        .shard_set()
        .ids()
        .iter()
        .filter(|&&s| fleet.is_alive(s))
        .count();
    println!(
        "fleet smoke OK: {} wire requests over 3 shards ({alive} alive after kill), \
         {} tenants, 1 mid-run publish, dead-shard traffic typed Closed, UDS round trip OK",
        wire_requests,
        TENANTS.len()
    );
    fleet.shutdown();
}
