//! Per-tenant serving telemetry.
//!
//! A fleet serves many tenants (users, MD drivers, relabeling jobs)
//! through the same shards; an SLO is only meaningful per tenant — one
//! tenant's burst must be visible as *that tenant's* tail latency, not
//! smeared into a fleet-wide average. The [`TenantTable`] hands out
//! one [`TenantStats`] per tenant id; the engine resolves the handles
//! before each batch fan-out, so the record path inside the parallel
//! region is purely atomic increments into pre-resolved `Arc`s — no
//! lock, no allocation, same discipline as [`crate::stats::ServeStats`].

use dp_bench::report::{BenchReport, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Atomic per-tenant counters. One instance per tenant id, shared by
/// every shard engine that serves the tenant (the fleet passes one
/// [`TenantTable`] to all shards).
#[derive(Debug, Default)]
pub struct TenantStats {
    /// Requests resolved for this tenant (ok or typed error).
    pub requests: AtomicU64,
    /// Requests that resolved with an `Ok` response.
    pub ok: AtomicU64,
    /// Requests that resolved with a typed error (bad request, shed,
    /// deadline, eval failure, unknown model, closed).
    pub errors: AtomicU64,
    /// Responses flagged degraded (energy-only under pressure).
    pub degraded: AtomicU64,
    /// Submission-to-response latency, nanoseconds (log2 buckets).
    pub latency_ns: Histogram,
}

/// Point-in-time plain-value view of one tenant's counters.
#[derive(Clone, Debug)]
pub struct TenantSnapshot {
    /// Requests resolved.
    pub requests: u64,
    /// `Ok` responses.
    pub ok: u64,
    /// Typed-error resolutions.
    pub errors: u64,
    /// Degraded responses.
    pub degraded: u64,
    /// Latency percentiles in nanoseconds (`None` before any request).
    pub p50_ns: Option<f64>,
    /// 99th percentile latency.
    pub p99_ns: Option<f64>,
    /// 99.9th percentile latency.
    pub p999_ns: Option<f64>,
}

impl TenantStats {
    /// Record one resolved request.
    pub fn record(&self, latency_ns: u64, ok: bool, degraded: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if ok {
            self.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_ns.record(latency_ns);
    }

    /// Point-in-time view.
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            p50_ns: self.latency_ns.p50(),
            p99_ns: self.latency_ns.p99(),
            p999_ns: self.latency_ns.p999(),
        }
    }
}

/// Tenant-id → stats map shared by every shard of a fleet. Reads (the
/// per-batch handle resolution) take a read lock on a `BTreeMap`;
/// tenants are created once, on first sight.
#[derive(Debug, Default)]
pub struct TenantTable {
    tenants: RwLock<BTreeMap<u64, Arc<TenantStats>>>,
}

impl TenantTable {
    /// Empty table.
    pub fn new() -> Self {
        TenantTable::default()
    }

    /// The stats handle for `tenant`, created on first sight. The
    /// common case (tenant already known) is a read lock plus an `Arc`
    /// clone.
    pub fn handle(&self, tenant: u64) -> Arc<TenantStats> {
        if let Some(s) = self
            .tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&tenant)
        {
            return Arc::clone(s);
        }
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(tenant).or_default())
    }

    /// The stats handle for `tenant` if it has ever been seen.
    pub fn get(&self, tenant: u64) -> Option<Arc<TenantStats>> {
        self.tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&tenant)
            .map(Arc::clone)
    }

    /// All known tenant ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .copied()
            .collect()
    }

    /// Snapshots for every known tenant, ascending by id.
    pub fn snapshots(&self) -> Vec<(u64, TenantSnapshot)> {
        self.tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(id, s)| (*id, s.snapshot()))
            .collect()
    }

    /// Append per-tenant latency percentiles and outcome counters to a
    /// [`BenchReport`] — one row group per tenant, the shape column
    /// carrying `[tenant_id, shards]`.
    pub fn report_into(&self, report: &mut BenchReport, name: &str, shards: usize) {
        for (tenant, snap) in self.snapshots() {
            let shape = [tenant as usize, shards];
            let mut push = |metric: &str, value: f64| {
                report.push(
                    &format!("{name}_{metric}"),
                    &shape,
                    1,
                    value,
                    snap.requests as usize,
                );
            };
            push("p50_ns", snap.p50_ns.unwrap_or(0.0));
            push("p99_ns", snap.p99_ns.unwrap_or(0.0));
            push("p999_ns", snap.p999_ns.unwrap_or(0.0));
            push("requests", snap.requests as f64);
            push("ok", snap.ok as f64);
            push("errors", snap.errors as f64);
            push("degraded", snap.degraded as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_tenant() {
        let t = TenantTable::new();
        let a = t.handle(7);
        let b = t.handle(7);
        assert!(Arc::ptr_eq(&a, &b));
        a.record(1_000, true, false);
        assert_eq!(b.snapshot().requests, 1);
        assert!(t.get(8).is_none());
        let _ = t.handle(3);
        assert_eq!(t.ids(), vec![3, 7]);
    }

    #[test]
    fn snapshot_separates_outcomes() {
        let s = TenantStats::default();
        s.record(1_000, true, false);
        s.record(2_000, true, true);
        s.record(50_000, false, false);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.ok, 2);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.degraded, 1);
        assert!(snap.p50_ns.unwrap() > 0.0);
        assert!(snap.p999_ns.unwrap() >= snap.p50_ns.unwrap());
    }

    #[test]
    fn report_rows_are_per_tenant() {
        let t = TenantTable::new();
        t.handle(1).record(512, true, false);
        t.handle(2).record(1024, false, false);
        let mut r = BenchReport::new("fleet");
        t.report_into(&mut r, "tenant", 3);
        assert!(r.find("tenant_p999_ns", &[1, 3], 1).is_some());
        assert!(r.find("tenant_errors", &[2, 3], 1).is_some());
    }
}
