//! Zero-copy binary wire protocol for the serving fleet.
//!
//! Layered on `dp_tensor::wire`: every frame is the little-endian
//! payload below followed by a CRC-32 trailer, so a receiver validates
//! integrity before decoding and decoding validates structure before
//! any value is trusted. Decode never panics and never over-reads —
//! every malformed input is a typed [`WireError`]
//! (`tests/wire_corrupt.rs` sweeps truncations, bit flips, oversized
//! lengths, and unknown versions over every frame type).
//!
//! ## Frame layout
//!
//! ```text
//! +-------+---------+------+---------------------+-------+
//! | magic | version | type |       payload       | CRC32 |
//! | DPWF  |  u16=1  |  u8  |   (type-specific)   |  u32  |
//! +-------+---------+------+---------------------+-------+
//! ```
//!
//! Request frames: `Infer` (a frame to evaluate), `Publish` (a
//! `model_io` blob to hot-swap in), `StatsQuery` (one shard's
//! counters), `Health`. Response frames: `InferOk`, `Error` (a full
//! [`ServeError`], round-tripped losslessly), `PublishOk`, `Stats`,
//! `HealthOk`.
//!
//! Bulk numeric payloads (type ids, positions, forces) are *borrowed*
//! from the input buffer as packed little-endian slices
//! ([`Reader::u32_bytes`] / [`Reader::f64_bytes`]) — decoding a
//! million-atom frame copies no atom data until the engine
//! materializes the request.
//!
//! ## Transports
//!
//! [`serve_frame`] is the transport-independent server: bytes in,
//! bytes out. [`Loopback`] calls it in-process (the differential
//! harness drives the fleet through real encoded frames);
//! [`WireServer`]/[`WireClient`] speak the same frames over a Unix
//! domain socket with a `u32` length prefix per frame, so engines can
//! run as separate processes.

use crate::batch::{Fidelity, InferRequest, InferResponse, ServeError};
use crate::shard::Fleet;
use crate::stats::StatsSnapshot;
use dp_data::dataset::Snapshot;
use dp_mdsim::Vec3;
use dp_tensor::wire::{f64_at, u32_at, Reader, WireError, Writer};
use std::io::{self, Read as IoRead, Write as IoWrite};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Frame magic: every dp-serve wire frame starts with these bytes.
pub const WIRE_MAGIC: [u8; 4] = *b"DPWF";
/// Protocol version; a frame with any other version is rejected typed.
pub const WIRE_VERSION: u16 = 1;
/// Upper bound on atoms per wire frame — larger counts are treated as
/// corruption, bounding what a hostile length header can make the
/// decoder reserve.
pub const MAX_WIRE_ATOMS: u32 = 1 << 24;
/// Upper bound on species names per frame.
pub const MAX_WIRE_TYPES: u32 = 256;
/// Upper bound on one length-prefixed frame over a stream transport.
pub const MAX_FRAME_BYTES: u32 = 1 << 28;

const FRAME_INFER: u8 = 1;
const FRAME_INFER_OK: u8 = 2;
const FRAME_ERROR: u8 = 3;
const FRAME_PUBLISH: u8 = 4;
const FRAME_PUBLISH_OK: u8 = 5;
const FRAME_STATS_QUERY: u8 = 6;
const FRAME_STATS: u8 = 7;
const FRAME_HEALTH: u8 = 8;
const FRAME_HEALTH_OK: u8 = 9;

const ERR_CLOSED: u8 = 0;
const ERR_BAD_REQUEST: u8 = 1;
const ERR_OVERLOADED: u8 = 2;
const ERR_DEADLINE: u8 = 3;
const ERR_EVAL_FAILED: u8 = 4;
const ERR_UNKNOWN_MODEL: u8 = 5;
const ERR_SNAPSHOT_PRUNED: u8 = 6;

fn fidelity_code(f: Fidelity) -> u8 {
    match f {
        Fidelity::Auto => 0,
        Fidelity::Master => 1,
        Fidelity::Compressed => 2,
        Fidelity::Quantized => 3,
    }
}

fn fidelity_from(code: u8) -> Result<Fidelity, WireError> {
    match code {
        0 => Ok(Fidelity::Auto),
        1 => Ok(Fidelity::Master),
        2 => Ok(Fidelity::Compressed),
        3 => Ok(Fidelity::Quantized),
        c => Err(WireError::Invalid(format!("unknown fidelity code {c}"))),
    }
}

/// A decoded `Infer` request. Atom data stays borrowed from the frame
/// buffer — packed little-endian `u32` type ids and `f64` positions —
/// until [`InferFrame::to_request`] materializes a [`Snapshot`].
#[derive(Debug)]
pub struct InferFrame<'a> {
    /// Target model id (routes the request to its owning shard).
    pub model: u64,
    /// Accounting tenant.
    pub tenant: u64,
    /// Compute forces too?
    pub want_forces: bool,
    /// Bulk lane (shed first under overload)?
    pub bulk: bool,
    /// Requested serving tier.
    pub fidelity: Fidelity,
    /// Latency budget in nanoseconds (`None` = no deadline).
    pub deadline_ns: Option<u64>,
    /// Orthorhombic cell lengths (Å).
    pub cell: [f64; 3],
    /// Species names, indexed by type id.
    pub type_names: Vec<String>,
    /// Atom count (`types` and `pos` lengths were validated against
    /// it at decode time).
    pub n_atoms: u32,
    types: &'a [u8],
    pos: &'a [u8],
}

impl InferFrame<'_> {
    /// Type id of atom `i` (zero-copy view into the frame buffer).
    pub fn type_at(&self, i: usize) -> u32 {
        u32_at(self.types, i)
    }

    /// Position of atom `i`.
    pub fn pos_at(&self, i: usize) -> Vec3 {
        Vec3::new(
            f64_at(self.pos, 3 * i),
            f64_at(self.pos, 3 * i + 1),
            f64_at(self.pos, 3 * i + 2),
        )
    }

    /// Materialize the engine-side request (the only copy the server
    /// makes of the atom data).
    pub fn to_request(&self) -> InferRequest {
        let n = self.n_atoms as usize;
        let frame = Snapshot {
            cell: self.cell,
            types: (0..n).map(|i| self.type_at(i) as usize).collect(),
            type_names: self.type_names.clone(),
            pos: (0..n).map(|i| self.pos_at(i)).collect(),
            energy: 0.0,
            forces: Vec::new(),
            temperature: 0.0,
        };
        let mut req = InferRequest::new(frame, self.want_forces)
            .with_fidelity(self.fidelity)
            .for_model(self.model)
            .from_tenant(self.tenant);
        if self.bulk {
            req = req.bulk();
        }
        if let Some(ns) = self.deadline_ns {
            req = req.with_deadline(Duration::from_nanos(ns));
        }
        req
    }
}

/// A decoded `InferOk` response; forces stay borrowed until
/// [`InferOkFrame::to_response`].
#[derive(Debug)]
pub struct InferOkFrame<'a> {
    /// Snapshot version that served the request.
    pub version: u64,
    /// Energy-only under pressure although forces were requested?
    pub degraded: bool,
    /// The tier that computed the numbers.
    pub fidelity: Fidelity,
    /// Total energy (eV).
    pub energy: f64,
    /// Number of force vectors carried (0 = no forces).
    pub n_forces: u32,
    forces: &'a [u8],
}

impl InferOkFrame<'_> {
    /// Force on atom `i` (zero-copy view).
    pub fn force_at(&self, i: usize) -> Vec3 {
        Vec3::new(
            f64_at(self.forces, 3 * i),
            f64_at(self.forces, 3 * i + 1),
            f64_at(self.forces, 3 * i + 2),
        )
    }

    /// Materialize the client-side response.
    pub fn to_response(&self) -> InferResponse {
        let forces = (self.n_forces > 0)
            .then(|| (0..self.n_forces as usize).map(|i| self.force_at(i)).collect());
        InferResponse {
            energy: self.energy,
            forces,
            version: self.version,
            degraded: self.degraded,
            fidelity: self.fidelity,
        }
    }
}

/// A decoded `Error` response: the typed [`ServeError`] round-tripped
/// through `(code, a, b, message)`.
#[derive(Debug)]
pub struct ErrorFrame<'a> {
    /// Error discriminant (`ERR_*`).
    pub code: u8,
    /// First numeric field (depth / waited-ns / model id / version).
    pub a: u64,
    /// Second numeric field (capacity / budget-ns / current version).
    pub b: u64,
    msg: &'a [u8],
}

impl ErrorFrame<'_> {
    /// Reconstruct the typed error.
    pub fn to_error(&self) -> ServeError {
        let msg = || String::from_utf8_lossy(self.msg).into_owned();
        match self.code {
            ERR_CLOSED => ServeError::Closed,
            ERR_OVERLOADED => ServeError::Overloaded {
                depth: self.a as usize,
                capacity: self.b as usize,
            },
            ERR_DEADLINE => ServeError::DeadlineExceeded {
                waited: Duration::from_nanos(self.a),
                budget: Duration::from_nanos(self.b),
            },
            ERR_EVAL_FAILED => ServeError::EvalFailed(msg()),
            ERR_UNKNOWN_MODEL => ServeError::UnknownModel { model: self.a },
            ERR_SNAPSHOT_PRUNED => ServeError::SnapshotPruned {
                version: self.a,
                current: self.b,
            },
            // BadRequest and anything a future version adds: the
            // message carries the story.
            _ => ServeError::BadRequest(msg()),
        }
    }
}

/// A decoded `Publish` request: a `model_io` blob to install under a
/// model id (validated by the registry before anything serves it).
#[derive(Debug)]
pub struct PublishFrame<'a> {
    /// Target model id (created on first publish).
    pub model: u64,
    /// The serialized model (`model_io` v2, self-checksummed).
    pub blob: &'a [u8],
}

/// A decoded `Stats` response: one shard's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsFrame {
    /// The shard the counters describe.
    pub shard: u32,
    /// Requests completed.
    pub requests: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Overload sheds.
    pub shed: u64,
    /// Deadline sheds.
    pub deadline_miss: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Degraded responses.
    pub degraded: u64,
    /// Model-eval failures.
    pub eval_failures: u64,
    /// Largest queue depth observed.
    pub max_depth: u64,
    /// Latency percentiles, nanoseconds (0 before any request).
    pub p50_ns: f64,
    /// 99th percentile latency.
    pub p99_ns: f64,
    /// 99.9th percentile latency.
    pub p999_ns: f64,
}

impl StatsFrame {
    /// Build from an engine snapshot.
    pub fn from_snapshot(shard: u32, s: &StatsSnapshot) -> StatsFrame {
        StatsFrame {
            shard,
            requests: s.requests,
            batches: s.batches,
            shed: s.shed,
            deadline_miss: s.deadline_miss,
            breaker_trips: s.breaker_trips,
            degraded: s.degraded,
            eval_failures: s.eval_failures,
            max_depth: s.max_depth,
            p50_ns: s.latency_p50_ns.unwrap_or(0.0),
            p99_ns: s.latency_p99_ns.unwrap_or(0.0),
            p999_ns: s.latency_p999_ns.unwrap_or(0.0),
        }
    }
}

/// A decoded `HealthOk` response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthFrame {
    /// Configured shard count.
    pub shards: u32,
    /// Shards still accepting traffic.
    pub alive: u32,
    /// Registered models.
    pub models: u64,
    /// Tenants seen so far.
    pub tenants: u64,
}

/// Any decoded wire frame.
#[derive(Debug)]
pub enum Frame<'a> {
    /// Inference request.
    Infer(InferFrame<'a>),
    /// Inference success.
    InferOk(InferOkFrame<'a>),
    /// Typed failure (any request kind).
    Error(ErrorFrame<'a>),
    /// Model publish request.
    Publish(PublishFrame<'a>),
    /// Publish success: the model id and its new version.
    PublishOk {
        /// The published model id.
        model: u64,
        /// The registry version after the publish.
        version: u64,
    },
    /// Stats request for one shard.
    StatsQuery {
        /// The shard whose counters are wanted.
        shard: u32,
    },
    /// Stats response.
    Stats(StatsFrame),
    /// Health probe.
    Health,
    /// Health response.
    HealthOk(HealthFrame),
}

fn header(tag: u8) -> Writer {
    let mut w = Writer::new();
    w.raw(&WIRE_MAGIC);
    w.u16(WIRE_VERSION);
    w.u8(tag);
    w
}

/// Encode an inference request.
pub fn encode_infer(req: &InferRequest) -> Vec<u8> {
    let mut w = header(FRAME_INFER);
    w.u64(req.model);
    w.u64(req.tenant);
    let mut flags = 0u8;
    if req.want_forces {
        flags |= 1;
    }
    if req.priority == crate::slo::Priority::Bulk {
        flags |= 2;
    }
    w.u8(flags);
    w.u8(fidelity_code(req.fidelity));
    w.u64(match req.deadline {
        None => u64::MAX,
        Some(d) => (d.as_nanos().min(u128::from(u64::MAX - 1))) as u64,
    });
    for c in req.frame.cell {
        w.f64(c);
    }
    w.u32(req.frame.type_names.len() as u32);
    for name in &req.frame.type_names {
        w.bytes(name.as_bytes());
    }
    w.u32(req.frame.types.len() as u32);
    for &t in &req.frame.types {
        w.u32(t as u32);
    }
    for p in &req.frame.pos {
        for c in 0..3 {
            w.f64(p.0[c]);
        }
    }
    w.into_bytes_with_crc()
}

/// Encode an inference success.
pub fn encode_infer_ok(resp: &InferResponse) -> Vec<u8> {
    let mut w = header(FRAME_INFER_OK);
    w.u64(resp.version);
    w.u8(resp.degraded as u8);
    w.u8(fidelity_code(resp.fidelity));
    w.f64(resp.energy);
    match &resp.forces {
        None => w.u32(0),
        Some(fs) => {
            w.u32(fs.len() as u32);
            for f in fs {
                for c in 0..3 {
                    w.f64(f.0[c]);
                }
            }
        }
    }
    w.into_bytes_with_crc()
}

/// Encode a typed failure.
pub fn encode_error(err: &ServeError) -> Vec<u8> {
    let mut w = header(FRAME_ERROR);
    let (code, a, b, msg): (u8, u64, u64, &str) = match err {
        ServeError::Closed => (ERR_CLOSED, 0, 0, ""),
        ServeError::BadRequest(m) => (ERR_BAD_REQUEST, 0, 0, m),
        ServeError::Overloaded { depth, capacity } => {
            (ERR_OVERLOADED, *depth as u64, *capacity as u64, "")
        }
        ServeError::DeadlineExceeded { waited, budget } => (
            ERR_DEADLINE,
            waited.as_nanos().min(u128::from(u64::MAX)) as u64,
            budget.as_nanos().min(u128::from(u64::MAX)) as u64,
            "",
        ),
        ServeError::EvalFailed(m) => (ERR_EVAL_FAILED, 0, 0, m),
        ServeError::UnknownModel { model } => (ERR_UNKNOWN_MODEL, *model, 0, ""),
        ServeError::SnapshotPruned { version, current } => {
            (ERR_SNAPSHOT_PRUNED, *version, *current, "")
        }
    };
    w.u8(code);
    w.u64(a);
    w.u64(b);
    w.bytes(msg.as_bytes());
    w.into_bytes_with_crc()
}

/// Encode an inference outcome (success or typed failure).
pub fn encode_infer_result(result: &Result<InferResponse, ServeError>) -> Vec<u8> {
    match result {
        Ok(resp) => encode_infer_ok(resp),
        Err(e) => encode_error(e),
    }
}

/// Encode a model publish (`blob` is a `model_io` v2 artifact).
pub fn encode_publish(model: u64, blob: &[u8]) -> Vec<u8> {
    let mut w = header(FRAME_PUBLISH);
    w.u64(model);
    w.bytes(blob);
    w.into_bytes_with_crc()
}

/// Encode a publish acknowledgement.
pub fn encode_publish_ok(model: u64, version: u64) -> Vec<u8> {
    let mut w = header(FRAME_PUBLISH_OK);
    w.u64(model);
    w.u64(version);
    w.into_bytes_with_crc()
}

/// Encode a stats request for one shard.
pub fn encode_stats_query(shard: u32) -> Vec<u8> {
    let mut w = header(FRAME_STATS_QUERY);
    w.u32(shard);
    w.into_bytes_with_crc()
}

/// Encode a stats response.
pub fn encode_stats(s: &StatsFrame) -> Vec<u8> {
    let mut w = header(FRAME_STATS);
    w.u32(s.shard);
    for v in [
        s.requests,
        s.batches,
        s.shed,
        s.deadline_miss,
        s.breaker_trips,
        s.degraded,
        s.eval_failures,
        s.max_depth,
    ] {
        w.u64(v);
    }
    for v in [s.p50_ns, s.p99_ns, s.p999_ns] {
        w.f64(v);
    }
    w.into_bytes_with_crc()
}

/// Encode a health probe.
pub fn encode_health() -> Vec<u8> {
    header(FRAME_HEALTH).into_bytes_with_crc()
}

/// Encode a health response.
pub fn encode_health_ok(h: &HealthFrame) -> Vec<u8> {
    let mut w = header(FRAME_HEALTH_OK);
    w.u32(h.shards);
    w.u32(h.alive);
    w.u64(h.models);
    w.u64(h.tenants);
    w.into_bytes_with_crc()
}

fn decode_infer<'a>(r: &mut Reader<'a>) -> Result<InferFrame<'a>, WireError> {
    let model = r.u64()?;
    let tenant = r.u64()?;
    let flags = r.u8()?;
    if flags & !0b11 != 0 {
        return Err(WireError::Invalid(format!("unknown infer flags {flags:#04x}")));
    }
    let fidelity = fidelity_from(r.u8()?)?;
    let deadline = r.u64()?;
    let mut cell = [0.0; 3];
    for c in &mut cell {
        *c = r.f64()?;
    }
    let n_names = r.u32()?;
    if n_names > MAX_WIRE_TYPES {
        return Err(WireError::Invalid(format!("implausible species count {n_names}")));
    }
    let mut type_names = Vec::with_capacity(n_names as usize);
    for _ in 0..n_names {
        let raw = r.bytes()?;
        type_names.push(
            std::str::from_utf8(raw)
                .map_err(|_| WireError::Invalid("species name is not UTF-8".into()))?
                .to_string(),
        );
    }
    let n_atoms = r.u32()?;
    if n_atoms > MAX_WIRE_ATOMS {
        return Err(WireError::Invalid(format!("implausible atom count {n_atoms}")));
    }
    let types = r.u32_bytes(n_atoms as usize)?;
    let pos = r.f64_bytes(3 * n_atoms as usize)?;
    Ok(InferFrame {
        model,
        tenant,
        want_forces: flags & 1 != 0,
        bulk: flags & 2 != 0,
        fidelity,
        deadline_ns: (deadline != u64::MAX).then_some(deadline),
        cell,
        type_names,
        n_atoms,
        types,
        pos,
    })
}

fn decode_infer_ok<'a>(r: &mut Reader<'a>) -> Result<InferOkFrame<'a>, WireError> {
    let version = r.u64()?;
    let degraded = match r.u8()? {
        0 => false,
        1 => true,
        d => return Err(WireError::Invalid(format!("bad degraded flag {d}"))),
    };
    let fidelity = fidelity_from(r.u8()?)?;
    let energy = r.f64()?;
    let n_forces = r.u32()?;
    if n_forces > MAX_WIRE_ATOMS {
        return Err(WireError::Invalid(format!("implausible force count {n_forces}")));
    }
    let forces = r.f64_bytes(3 * n_forces as usize)?;
    Ok(InferOkFrame { version, degraded, fidelity, energy, n_forces, forces })
}

/// Decode one frame: CRC trailer, magic, version, type, payload —
/// every layer validated, the whole buffer consumed. Truncation,
/// corruption, oversized lengths, unknown versions and unknown frame
/// types all come back as typed [`WireError`]s.
pub fn decode(bytes: &[u8]) -> Result<Frame<'_>, WireError> {
    let mut r = Reader::new_verifying_crc(bytes)?;
    let magic = r.raw(4)?;
    if magic != WIRE_MAGIC {
        return Err(WireError::Invalid(format!("bad frame magic {magic:02x?}")));
    }
    let version = r.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::Invalid(format!(
            "unsupported wire version {version} (this build speaks {WIRE_VERSION})"
        )));
    }
    let tag = r.u8()?;
    let frame = match tag {
        FRAME_INFER => Frame::Infer(decode_infer(&mut r)?),
        FRAME_INFER_OK => Frame::InferOk(decode_infer_ok(&mut r)?),
        FRAME_ERROR => {
            let code = r.u8()?;
            let a = r.u64()?;
            let b = r.u64()?;
            let msg = r.bytes()?;
            Frame::Error(ErrorFrame { code, a, b, msg })
        }
        FRAME_PUBLISH => {
            let model = r.u64()?;
            let blob = r.bytes()?;
            Frame::Publish(PublishFrame { model, blob })
        }
        FRAME_PUBLISH_OK => {
            let model = r.u64()?;
            let version = r.u64()?;
            Frame::PublishOk { model, version }
        }
        FRAME_STATS_QUERY => Frame::StatsQuery { shard: r.u32()? },
        FRAME_STATS => {
            let shard = r.u32()?;
            let mut u = [0u64; 8];
            for v in &mut u {
                *v = r.u64()?;
            }
            let mut p = [0.0f64; 3];
            for v in &mut p {
                *v = r.f64()?;
            }
            Frame::Stats(StatsFrame {
                shard,
                requests: u[0],
                batches: u[1],
                shed: u[2],
                deadline_miss: u[3],
                breaker_trips: u[4],
                degraded: u[5],
                eval_failures: u[6],
                max_depth: u[7],
                p50_ns: p[0],
                p99_ns: p[1],
                p999_ns: p[2],
            })
        }
        FRAME_HEALTH => Frame::Health,
        FRAME_HEALTH_OK => Frame::HealthOk(HealthFrame {
            shards: r.u32()?,
            alive: r.u32()?,
            models: r.u64()?,
            tenants: r.u64()?,
        }),
        t => return Err(WireError::Invalid(format!("unknown frame type {t}"))),
    };
    r.expect_end()?;
    Ok(frame)
}

/// Client-side helper: decode a reply to an `Infer` as the engine-side
/// result type. A `WireError` means the *transport* failed (corrupt
/// bytes); an inner `Err(ServeError)` is the server's typed refusal.
pub fn decode_infer_reply(bytes: &[u8]) -> Result<Result<InferResponse, ServeError>, WireError> {
    match decode(bytes)? {
        Frame::InferOk(f) => Ok(Ok(f.to_response())),
        Frame::Error(e) => Ok(Err(e.to_error())),
        _ => Err(WireError::Invalid("unexpected reply frame for infer".into())),
    }
}

/// The transport-independent server: decode one request frame, run it
/// against the fleet, encode the reply. Every failure mode — corrupt
/// bytes, unknown model, overload, a killed shard — produces an
/// `Error` frame; this function never panics and always replies.
pub fn serve_frame(fleet: &Fleet, bytes: &[u8]) -> Vec<u8> {
    match decode(bytes) {
        Err(e) => encode_error(&ServeError::BadRequest(format!("wire decode failed: {e}"))),
        Ok(Frame::Infer(f)) => encode_infer_result(&fleet.infer(f.to_request())),
        Ok(Frame::Publish(p)) => match fleet.models().get(p.model) {
            Some(reg) => match reg.publish_bytes(p.blob) {
                Ok(version) => encode_publish_ok(p.model, version),
                Err(e) => encode_error(&ServeError::BadRequest(format!("publish failed: {e}"))),
            },
            None => match deepmd_core::model_io::from_bytes(p.blob) {
                // First publish under a fresh id: the blob becomes the
                // new registry's version 1.
                Ok(model) => {
                    let reg = Arc::new(crate::registry::ModelRegistry::new(model));
                    fleet.models().insert(p.model, reg);
                    encode_publish_ok(p.model, 1)
                }
                Err(e) => encode_error(&ServeError::BadRequest(format!("publish failed: {e}"))),
            },
        },
        Ok(Frame::StatsQuery { shard }) => match fleet.engine(shard) {
            Some(engine) => encode_stats(&StatsFrame::from_snapshot(shard, &engine.stats())),
            None => encode_error(&ServeError::BadRequest(format!("unknown shard {shard}"))),
        },
        Ok(Frame::Health) => {
            let set = fleet.shard_set();
            let alive = set.ids().iter().filter(|&&s| fleet.is_alive(s)).count() as u32;
            encode_health_ok(&HealthFrame {
                shards: set.len() as u32,
                alive,
                models: fleet.models().len() as u64,
                tenants: fleet.tenants().ids().len() as u64,
            })
        }
        // A response frame arriving as a request is a protocol error.
        Ok(_) => encode_error(&ServeError::BadRequest("unexpected response-type frame".into())),
    }
}

/// In-process transport: real encoded frames, no socket. The
/// differential harness uses this so the fleet path under test is the
/// full encode → route → compute → encode pipeline.
pub struct Loopback<'f> {
    fleet: &'f Fleet,
}

impl<'f> Loopback<'f> {
    /// Wrap a fleet.
    pub fn new(fleet: &'f Fleet) -> Self {
        Loopback { fleet }
    }

    /// One request/reply exchange.
    pub fn call(&self, frame: &[u8]) -> Vec<u8> {
        serve_frame(self.fleet, frame)
    }
}

fn read_frame(stream: &mut UnixStream) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        other => other?,
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("wire frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    Ok(Some(buf))
}

fn write_frame(stream: &mut UnixStream, frame: &[u8]) -> io::Result<()> {
    stream.write_all(&(frame.len() as u32).to_le_bytes())?;
    stream.write_all(frame)
}

/// Unix-domain-socket server speaking length-prefixed wire frames.
/// Each connection gets its own thread; each frame gets exactly one
/// reply. Shut down explicitly or on drop.
pub struct WireServer {
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    path: PathBuf,
}

impl WireServer {
    /// Bind `path` (an existing socket file is replaced) and serve
    /// `fleet` until shutdown.
    pub fn bind(fleet: Arc<Fleet>, path: impl AsRef<Path>) -> io::Result<WireServer> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("dp-wire-accept".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !stop_flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            let fleet = Arc::clone(&fleet);
                            let h = std::thread::Builder::new()
                                .name("dp-wire-conn".into())
                                .spawn(move || {
                                    let _ = stream.set_nonblocking(false);
                                    while let Ok(Some(frame)) = read_frame(&mut stream) {
                                        let reply = serve_frame(&fleet, &frame);
                                        if write_frame(&mut stream, &reply).is_err() {
                                            break;
                                        }
                                    }
                                })
                                .expect("dp-serve: failed to spawn connection thread");
                            conns.push(h);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                for h in conns {
                    let _ = h.join();
                }
            })
            .expect("dp-serve: failed to spawn accept loop");
        Ok(WireServer { stop, accept: Some(accept), path })
    }

    /// The socket path clients connect to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stop accepting, join connection threads (they exit when their
    /// client hangs up), and remove the socket file. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Client end of the socket transport: one request frame out, one
/// reply frame back, synchronously.
pub struct WireClient {
    stream: UnixStream,
}

impl WireClient {
    /// Connect to a [`WireServer`] socket.
    pub fn connect(path: impl AsRef<Path>) -> io::Result<WireClient> {
        Ok(WireClient { stream: UnixStream::connect(path)? })
    }

    /// One request/reply exchange. An `Err` is a transport failure;
    /// server-side refusals come back as `Error` frames in the bytes.
    pub fn call(&mut self, frame: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, frame)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{demo_frame as frame, demo_model as model};
    use crate::registry::{ModelRegistry, ModelTable};
    use crate::shard::FleetConfig;

    fn fleet() -> Fleet {
        let models = ModelTable::single(Arc::new(ModelRegistry::new(model(41))));
        Fleet::start(FleetConfig::new(2), models)
    }

    #[test]
    fn infer_frame_roundtrips_with_zero_copy_views() {
        let req = InferRequest::new(frame(3), true)
            .bulk()
            .with_deadline(Duration::from_millis(250))
            .for_model(42)
            .from_tenant(7)
            .with_fidelity(Fidelity::Master);
        let bytes = encode_infer(&req);
        let Frame::Infer(f) = decode(&bytes).unwrap() else {
            panic!("expected an Infer frame")
        };
        assert_eq!((f.model, f.tenant), (42, 7));
        assert!(f.want_forces && f.bulk);
        assert_eq!(f.fidelity, Fidelity::Master);
        assert_eq!(f.deadline_ns, Some(250_000_000));
        assert_eq!(f.n_atoms as usize, req.frame.types.len());
        let back = f.to_request();
        assert_eq!(back.frame.cell, req.frame.cell);
        assert_eq!(back.frame.types, req.frame.types);
        assert_eq!(back.frame.type_names, req.frame.type_names);
        for (a, b) in back.frame.pos.iter().zip(&req.frame.pos) {
            assert_eq!(a.0.map(f64::to_bits), b.0.map(f64::to_bits));
        }
        assert_eq!(back.priority, crate::slo::Priority::Bulk);
        assert_eq!(back.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn every_error_variant_roundtrips() {
        let errors = [
            ServeError::Closed,
            ServeError::BadRequest("bad frame".into()),
            ServeError::Overloaded { depth: 12, capacity: 8 },
            ServeError::DeadlineExceeded {
                waited: Duration::from_nanos(12_345),
                budget: Duration::from_nanos(10_000),
            },
            ServeError::EvalFailed("NaN".into()),
            ServeError::UnknownModel { model: 99 },
            ServeError::SnapshotPruned { version: 3, current: 9 },
        ];
        for e in errors {
            let bytes = encode_error(&e);
            let Frame::Error(f) = decode(&bytes).unwrap() else {
                panic!("expected an Error frame")
            };
            assert_eq!(f.to_error(), e);
        }
    }

    #[test]
    fn stats_and_health_frames_roundtrip() {
        let s = StatsFrame {
            shard: 2,
            requests: 100,
            batches: 13,
            shed: 4,
            deadline_miss: 2,
            breaker_trips: 1,
            degraded: 5,
            eval_failures: 3,
            max_depth: 17,
            p50_ns: 1024.0,
            p99_ns: 8192.0,
            p999_ns: 65536.0,
        };
        match decode(&encode_stats(&s)).unwrap() {
            Frame::Stats(d) => assert_eq!(d, s),
            other => panic!("expected Stats, got {other:?}"),
        }
        let h = HealthFrame { shards: 3, alive: 2, models: 5, tenants: 9 };
        match decode(&encode_health_ok(&h)).unwrap() {
            Frame::HealthOk(d) => assert_eq!(d, h),
            other => panic!("expected HealthOk, got {other:?}"),
        }
        assert!(matches!(decode(&encode_health()).unwrap(), Frame::Health));
        assert!(matches!(
            decode(&encode_stats_query(1)).unwrap(),
            Frame::StatsQuery { shard: 1 }
        ));
        assert!(matches!(
            decode(&encode_publish_ok(4, 2)).unwrap(),
            Frame::PublishOk { model: 4, version: 2 }
        ));
    }

    #[test]
    fn loopback_serves_bitwise_and_replies_typed() {
        let fleet = fleet();
        let lo = Loopback::new(&fleet);
        let f = frame(19);
        let direct = fleet.models().get(0).unwrap().current().model.predict(&f);
        let reply = lo.call(&encode_infer(&InferRequest::new(f.clone(), true)));
        let resp = decode_infer_reply(&reply).unwrap().unwrap();
        assert_eq!(resp.energy.to_bits(), direct.energy.to_bits());
        for (a, b) in resp.forces.unwrap().iter().zip(&direct.forces) {
            assert_eq!(a.0.map(f64::to_bits), b.0.map(f64::to_bits));
        }
        // Unknown model → typed error over the wire.
        let reply = lo.call(&encode_infer(&InferRequest::new(f.clone(), false).for_model(9)));
        assert_eq!(
            decode_infer_reply(&reply).unwrap().unwrap_err(),
            ServeError::UnknownModel { model: 9 }
        );
        // Corrupt request → typed error reply, not a panic or hang.
        let mut bad = encode_infer(&InferRequest::new(f, false));
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        let reply = lo.call(&bad);
        match decode_infer_reply(&reply).unwrap().unwrap_err() {
            ServeError::BadRequest(m) => assert!(m.contains("wire decode"), "got: {m}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        fleet.shutdown();
    }

    #[test]
    fn publish_health_and_stats_over_loopback() {
        let fleet = fleet();
        let lo = Loopback::new(&fleet);
        // Hot-swap model 0 over the wire.
        let blob = deepmd_core::model_io::to_bytes(&model(42));
        match decode(&lo.call(&encode_publish(0, &blob))).unwrap() {
            Frame::PublishOk { model: 0, version } => assert_eq!(version, 2),
            other => panic!("expected PublishOk, got {other:?}"),
        }
        // First publish under a fresh id creates the model fleet-wide.
        match decode(&lo.call(&encode_publish(6, &blob))).unwrap() {
            Frame::PublishOk { model: 6, version } => assert_eq!(version, 1),
            other => panic!("expected PublishOk, got {other:?}"),
        }
        // A corrupt blob is refused typed.
        let mut bad = blob.clone();
        bad[blob.len() / 2] ^= 0x01;
        match decode(&lo.call(&encode_publish(0, &bad))).unwrap() {
            Frame::Error(e) => {
                assert!(matches!(e.to_error(), ServeError::BadRequest(_)))
            }
            other => panic!("expected Error, got {other:?}"),
        }
        // Health sees both models and both shards alive.
        match decode(&lo.call(&encode_health())).unwrap() {
            Frame::HealthOk(h) => {
                assert_eq!((h.shards, h.alive, h.models), (2, 2, 2));
            }
            other => panic!("expected HealthOk, got {other:?}"),
        }
        // Serve one request, then the owning shard's stats show it.
        let f = frame(20);
        let ok = decode_infer_reply(&lo.call(&encode_infer(&InferRequest::new(f, false))))
            .unwrap();
        assert!(ok.is_ok());
        let shard = fleet.route(0);
        match decode(&lo.call(&encode_stats_query(shard))).unwrap() {
            Frame::Stats(s) => {
                assert_eq!(s.shard, shard);
                assert!(s.requests >= 1);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        match decode(&lo.call(&encode_stats_query(99))).unwrap() {
            Frame::Error(e) => assert!(matches!(e.to_error(), ServeError::BadRequest(_))),
            other => panic!("expected Error, got {other:?}"),
        }
        fleet.shutdown();
    }

    #[test]
    fn uds_transport_serves_frames_end_to_end() {
        let models = ModelTable::single(Arc::new(ModelRegistry::new(model(43))));
        let fleet = Arc::new(Fleet::start(FleetConfig::new(2), models));
        let dir = std::env::temp_dir().join(format!("dp-wire-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("fleet.sock");
        let mut server = WireServer::bind(Arc::clone(&fleet), &sock).unwrap();
        let mut client = WireClient::connect(&sock).unwrap();
        let f = frame(21);
        let direct = fleet.models().get(0).unwrap().current().model.predict(&f);
        let reply = client.call(&encode_infer(&InferRequest::new(f, true))).unwrap();
        let resp = decode_infer_reply(&reply).unwrap().unwrap();
        assert_eq!(resp.energy.to_bits(), direct.energy.to_bits());
        let reply = client.call(&encode_health()).unwrap();
        assert!(matches!(decode(&reply).unwrap(), Frame::HealthOk(_)));
        drop(client);
        server.shutdown();
        fleet.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
