//! Request submission and micro-batch coalescing.
//!
//! Clients on any thread [`BatchQueue::submit`] an [`InferRequest`]
//! and block on the returned [`Ticket`]. A single dispatcher (the
//! engine) drains the queue into micro-batches under a
//! [`BatchPolicy`]: a batch closes when it reaches `max_batch`
//! requests or when `max_wait` has elapsed since its *oldest* request
//! arrived — the standard size-or-deadline policy that bounds both
//! per-request latency and per-batch overhead. Everything is plain
//! threads and condvars (async-free by design: the compute below is
//! CPU-bound and runs on `dp-pool`).
//!
//! Overload protection (DESIGN §12): the queue is *bounded* and has
//! two priority lanes. A submission beyond capacity is rejected with
//! [`ServeError::Overloaded`] — unless the arrival is interactive and
//! a bulk request can be evicted instead (the bulk lane is shed
//! first). The dispatcher drains the interactive lane before the bulk
//! lane. Every accepted request is fulfilled exactly once: a
//! [`Pending`] that is dropped unfulfilled (dispatcher panic,
//! shutdown) resolves its ticket with [`ServeError::Closed`] rather
//! than stranding the waiting client.

use crate::slo::Priority;
use crate::stats::ServeStats;
use dp_data::dataset::Snapshot;
use dp_mdsim::Vec3;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One inference request: a frame, whether forces are wanted
/// (energy-only requests skip the reverse sweep), the lane it rides
/// in, and an optional latency budget.
#[derive(Clone, Debug)]
pub struct InferRequest {
    /// The configuration to evaluate (labels are ignored).
    pub frame: Snapshot,
    /// Compute forces too?
    pub want_forces: bool,
    /// Which lane: interactive (an MD driver blocked on this step) or
    /// bulk (relabeling); bulk is shed first under overload.
    pub priority: Priority,
    /// Latency budget measured from submission. A request whose wait
    /// (plus projected service time, under `SloPolicy::shed_projected`)
    /// exceeds it is shed with [`ServeError::DeadlineExceeded`] instead
    /// of being computed late. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Which model tier may serve this request (see [`Fidelity`]).
    pub fidelity: Fidelity,
    /// Which published model serves this request. Model ids index the
    /// engine's `ModelTable`; id 0 is the default model, so the
    /// single-model API is the `model == 0` special case. A request
    /// naming an unknown id resolves with [`ServeError::UnknownModel`].
    pub model: u64,
    /// The tenant this request is accounted to (per-tenant latency and
    /// outcome counters in the fleet's `TenantTable`). Purely
    /// telemetry: tenancy never changes the computed numbers.
    pub tenant: u64,
}

impl InferRequest {
    /// An interactive request with no deadline (the pre-SLO default).
    pub fn new(frame: Snapshot, want_forces: bool) -> Self {
        InferRequest {
            frame,
            want_forces,
            priority: Priority::Interactive,
            deadline: None,
            fidelity: Fidelity::Auto,
            model: 0,
            tenant: 0,
        }
    }

    /// Move this request to the bulk lane.
    pub fn bulk(mut self) -> Self {
        self.priority = Priority::Bulk;
        self
    }

    /// Attach a latency budget.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Pin the request to a model tier (e.g. [`Fidelity::Master`] for
    /// verification traffic that must be bitwise against the f64 path).
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Address a specific published model (multi-model engines; id 0
    /// is the default model every engine serves).
    pub fn for_model(mut self, model: u64) -> Self {
        self.model = model;
        self
    }

    /// Account this request to a tenant.
    pub fn from_tenant(mut self, tenant: u64) -> Self {
        self.tenant = tenant;
        self
    }
}

/// Which tier of the published snapshot serves a request.
///
/// A snapshot can carry up to three artifacts (DESIGN §14): the f64
/// **master**, a spline-**compressed** model (tabulated embeddings,
/// analytic forces, ~1e-6 eV/atom), and an `i16`-**quantized**
/// energy-only model (~1e-4 eV/atom). Routing degrades gracefully: a
/// requested tier that was not published falls back toward the master
/// (quantized → compressed → master), and the response's
/// [`InferResponse::fidelity`] tag always names the tier that actually
/// computed the numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Fidelity {
    /// Let the engine choose: energy-only and degraded traffic takes
    /// the quantized tier, force requests the compressed tier, with the
    /// master as the universal fallback. An engine-wide default can be
    /// pinned via the `DP_FIDELITY` environment variable.
    #[default]
    Auto,
    /// The f64 master — bitwise identical to `DeepPotModel::predict`.
    Master,
    /// The spline-compressed model (tabulated embeddings).
    Compressed,
    /// The quantized energy-only model. Never serves forces: a forces
    /// request pinned here is answered energy-only from the quantized
    /// net (forces dropped), exactly like degraded service.
    Quantized,
}

impl Fidelity {
    /// Read the engine-wide default from `DP_FIDELITY`
    /// (`auto`/`master`/`compressed`/`quantized`, case-insensitive).
    /// Unset or unrecognized values mean [`Fidelity::Auto`] — serving
    /// must not refuse to start over a typo; the resolved tier is
    /// visible per-response.
    pub fn from_env() -> Fidelity {
        match std::env::var("DP_FIDELITY").unwrap_or_default().to_lowercase().as_str() {
            "master" => Fidelity::Master,
            "compressed" => Fidelity::Compressed,
            "quantized" => Fidelity::Quantized,
            _ => Fidelity::Auto,
        }
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Fidelity::Auto => "auto",
            Fidelity::Master => "master",
            Fidelity::Compressed => "compressed",
            Fidelity::Quantized => "quantized",
        })
    }
}

/// The served result, tagged with the snapshot that computed it.
#[derive(Clone, Debug, PartialEq)]
pub struct InferResponse {
    /// Total predicted energy (eV).
    pub energy: f64,
    /// Forces (eV/Å) when requested (and not degraded away).
    pub forces: Option<Vec<Vec3>>,
    /// Version of the published snapshot that served this request —
    /// every value in this response came from exactly this snapshot.
    pub version: u64,
    /// `true` when the engine served energy-only under sustained queue
    /// pressure although forces were requested. The energy is bitwise
    /// identical to what the full response would have carried — unless
    /// `fidelity` says a reduced tier computed it.
    pub degraded: bool,
    /// The tier that actually computed this response (never
    /// [`Fidelity::Auto`]). [`Fidelity::Master`] responses are bitwise
    /// identical to the direct f64 path.
    pub fidelity: Fidelity,
}

/// Why a request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The engine is shutting down; no new requests are accepted.
    Closed,
    /// The request cannot be evaluated by the served model.
    BadRequest(String),
    /// The queue is at capacity; the request was rejected (or, for a
    /// queued bulk request, evicted to admit an interactive arrival).
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The request's latency budget was already unmeetable at dispatch
    /// time, so the dispatcher shed it instead of computing it late.
    DeadlineExceeded {
        /// How long the request had waited when it was shed.
        waited: Duration,
        /// The budget it carried.
        budget: Duration,
    },
    /// Model evaluation failed (poisoned request or a snapshot that
    /// produces non-finite output). Repeated eval failures trip the
    /// engine's circuit breaker.
    EvalFailed(String),
    /// The request addressed a model id this engine does not serve.
    UnknownModel {
        /// The id the request carried.
        model: u64,
    },
    /// A retained-snapshot lookup named a version that was pruned from
    /// the registry's history (or never published). The typed answer
    /// to the stale-`Arc` footgun: callers asking for a reclaimed
    /// version get this, never a dangling or wrong snapshot.
    SnapshotPruned {
        /// The version that was asked for.
        version: u64,
        /// The registry's current version at lookup time.
        current: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "serving engine is closed"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue depth {depth} at capacity {capacity}")
            }
            ServeError::DeadlineExceeded { waited, budget } => write!(
                f,
                "deadline exceeded: waited {:.1} ms of a {:.1} ms budget",
                waited.as_secs_f64() * 1e3,
                budget.as_secs_f64() * 1e3
            ),
            ServeError::EvalFailed(m) => write!(f, "model evaluation failed: {m}"),
            ServeError::UnknownModel { model } => {
                write!(f, "unknown model id {model}: not in this engine's model table")
            }
            ServeError::SnapshotPruned { version, current } => write!(
                f,
                "snapshot version {version} was pruned (current is {current})"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Micro-batching policy.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Upper bound on requests per dispatched batch.
    pub max_batch: usize,
    /// Upper bound on how long the oldest pending request may wait for
    /// the batch to fill before it is dispatched anyway.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Completion slot shared between a [`Ticket`] and the dispatcher.
#[derive(Debug, Default)]
struct ResponseSlot {
    result: Mutex<Option<Result<InferResponse, ServeError>>>,
    done: Condvar,
    /// Set by the first (and only effective) fulfill.
    fulfilled: AtomicBool,
}

/// A pending request's handle; [`Ticket::wait`] blocks until the
/// engine responds.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Block until the response is available.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        let mut guard = self
            .slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = self
                .slot
                .done
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block for at most `timeout`. `None` means the response was not
    /// ready in time — the ticket stays valid, so the caller can keep
    /// waiting, poll again, or walk away (an eventual fulfill of an
    /// abandoned ticket is harmless).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<InferResponse, ServeError>> {
        let deadline = Instant::now() + timeout;
        let mut guard = self
            .slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = guard.take() {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .slot
                .done
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }
}

/// One queued request with its completion slot and arrival time. Held
/// by the queue, then by the dispatcher; public so custom dispatchers
/// (and the property tests) can drain a [`BatchQueue`] directly.
pub struct Pending {
    pub(crate) req: InferRequest,
    pub(crate) submitted: Instant,
    slot: Arc<ResponseSlot>,
}

impl Pending {
    /// The request this entry carries.
    pub fn request(&self) -> &InferRequest {
        &self.req
    }

    /// When the request was accepted into the queue.
    pub fn submitted(&self) -> Instant {
        self.submitted
    }

    /// Fulfill the request (any thread; wakes the waiting client).
    /// Idempotent: only the first fulfill lands.
    pub fn fulfill(&self, result: Result<InferResponse, ServeError>) {
        let mut guard = self
            .slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if self.slot.fulfilled.swap(true, Ordering::AcqRel) {
            return;
        }
        *guard = Some(result);
        self.slot.done.notify_all();
    }
}

impl Drop for Pending {
    /// Every accepted request resolves: an entry dropped unfulfilled
    /// (dispatcher panic, shutdown teardown) closes out its ticket
    /// with a typed error instead of stranding the client forever.
    fn drop(&mut self) {
        if !self.slot.fulfilled.load(Ordering::Acquire) {
            self.fulfill(Err(ServeError::Closed));
        }
    }
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending")
            .field("priority", &self.req.priority)
            .field("want_forces", &self.req.want_forces)
            .finish()
    }
}

struct QueueState {
    interactive: VecDeque<Pending>,
    bulk: VecDeque<Pending>,
    closed: bool,
}

impl QueueState {
    fn depth(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }
}

/// One drained micro-batch plus the queue geometry at drain time.
pub struct Drained {
    /// The requests to evaluate, interactive lane first.
    pub batch: Vec<Pending>,
    /// Total queue depth at drain time (before removal).
    pub depth: usize,
    /// Interactive-lane depth at drain time.
    pub interactive_depth: usize,
    /// Bulk-lane depth at drain time.
    pub bulk_depth: usize,
}

/// Thread-safe bounded submission queue with two priority lanes and
/// size-or-deadline batch draining.
pub struct BatchQueue {
    state: Mutex<QueueState>,
    arrived: Condvar,
    capacity: usize,
    stats: Arc<ServeStats>,
}

impl Default for BatchQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchQueue {
    /// An open, empty, effectively unbounded queue with its own stats
    /// sink (the pre-SLO behavior).
    pub fn new() -> Self {
        Self::bounded(usize::MAX, Arc::new(ServeStats::new()))
    }

    /// An open, empty queue holding at most `capacity` requests across
    /// both lanes (clamped to ≥ 1). Shed/overload events are counted
    /// into `stats`.
    pub fn bounded(capacity: usize, stats: Arc<ServeStats>) -> Self {
        BatchQueue {
            state: Mutex::new(QueueState {
                interactive: VecDeque::new(),
                bulk: VecDeque::new(),
                closed: false,
            }),
            arrived: Condvar::new(),
            capacity: capacity.max(1),
            stats,
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue a request. Returns the ticket the client blocks on;
    /// [`ServeError::Closed`] after [`BatchQueue::close`], or
    /// [`ServeError::Overloaded`] when the queue is full and nothing
    /// lower-priority can be evicted. An interactive arrival into a
    /// full queue evicts the *newest bulk* request (which resolves with
    /// `Overloaded`) — the bulk lane is shed first, and depth never
    /// exceeds capacity.
    pub fn submit(&self, req: InferRequest) -> Result<Ticket, ServeError> {
        let slot = Arc::new(ResponseSlot::default());
        let evicted: Option<Pending>;
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.closed {
                return Err(ServeError::Closed);
            }
            let depth = st.depth();
            if depth >= self.capacity {
                if req.priority == Priority::Interactive && !st.bulk.is_empty() {
                    evicted = st.bulk.pop_back();
                } else {
                    drop(st);
                    self.stats.record_shed();
                    return Err(ServeError::Overloaded { depth, capacity: self.capacity });
                }
            } else {
                evicted = None;
            }
            let pending = Pending {
                req,
                submitted: Instant::now(),
                slot: Arc::clone(&slot),
            };
            match pending.req.priority {
                Priority::Interactive => st.interactive.push_back(pending),
                Priority::Bulk => st.bulk.push_back(pending),
            }
        }
        if let Some(p) = evicted {
            self.stats.record_shed();
            p.fulfill(Err(ServeError::Overloaded {
                depth: self.capacity,
                capacity: self.capacity,
            }));
        }
        self.arrived.notify_all();
        Ok(Ticket { slot })
    }

    /// Number of requests currently queued, across both lanes.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .depth()
    }

    /// Refuse new submissions and wake the dispatcher so it can drain
    /// what is left.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        drop(st);
        self.arrived.notify_all();
    }

    /// Fulfill anything still queued with [`ServeError::Closed`] — the
    /// engine's post-join safety net, covering a dispatcher that died
    /// before draining.
    pub fn reject_remaining(&self) {
        let leftovers: Vec<Pending> = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let mut left: Vec<Pending> = st.interactive.drain(..).collect();
            left.extend(st.bulk.drain(..));
            left
        };
        for p in leftovers {
            p.fulfill(Err(ServeError::Closed));
        }
    }

    /// Dispatcher side: block for the next micro-batch. Returns the
    /// drained batch (interactive lane first) plus the per-lane depths
    /// at drain time, or `None` once the queue is closed *and* empty.
    ///
    /// The coalescing rule: wait until `max_batch` requests are
    /// pending, or until `max_wait` has passed since the oldest
    /// pending request arrived, whichever is first. A closed queue
    /// dispatches immediately (drain fast, don't make a shutdown wait
    /// out the deadline).
    pub fn next_batch(&self, policy: &BatchPolicy) -> Option<Drained> {
        let max_batch = policy.max_batch.max(1);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.depth() > 0 {
                break;
            }
            if st.closed {
                return None;
            }
            st = self.arrived.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let oldest = st
            .interactive
            .front()
            .map(|p| p.submitted)
            .into_iter()
            .chain(st.bulk.front().map(|p| p.submitted))
            .min();
        let deadline = oldest.map(|t| t + policy.max_wait);
        while st.depth() < max_batch && !st.closed {
            let Some(deadline) = deadline else { break };
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .arrived
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let interactive_depth = st.interactive.len();
        let bulk_depth = st.bulk.len();
        let depth = interactive_depth + bulk_depth;
        let take = depth.min(max_batch);
        let mut batch = Vec::with_capacity(take);
        while batch.len() < take {
            if let Some(p) = st.interactive.pop_front() {
                batch.push(p);
            } else if let Some(p) = st.bulk.pop_front() {
                batch.push(p);
            } else {
                break;
            }
        }
        Some(Drained { batch, depth, interactive_depth, bulk_depth })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_mdsim::Vec3;

    fn req() -> InferRequest {
        InferRequest::new(
            Snapshot {
                cell: [10.0; 3],
                types: vec![0],
                type_names: vec!["A".into()],
                pos: vec![Vec3::new(1.0, 1.0, 1.0)],
                energy: 0.0,
                forces: vec![Vec3::ZERO],
                temperature: 0.0,
            },
            false,
        )
    }

    #[test]
    fn full_batch_dispatches_without_waiting_out_the_deadline() {
        let q = BatchQueue::new();
        let policy = BatchPolicy {
            max_batch: 3,
            max_wait: Duration::from_secs(3600),
        };
        let tickets: Vec<_> = (0..5).map(|_| q.submit(req()).unwrap()).collect();
        let t0 = Instant::now();
        let d = q.next_batch(&policy).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(10), "must not block on the deadline");
        assert_eq!(d.batch.len(), 3);
        assert_eq!(d.depth, 5);
        // The 2 leftovers can't fill a batch of 3; flush them with a
        // short deadline instead of waiting out the hour-long one.
        let flush = BatchPolicy {
            max_batch: 3,
            max_wait: Duration::from_millis(1),
        };
        let d2 = q.next_batch(&flush).unwrap();
        assert_eq!(d2.batch.len(), 2);
        assert_eq!(d2.depth, 2);
        // Fulfill so the tickets don't dangle.
        for p in d.batch.iter().chain(d2.batch.iter()) {
            p.fulfill(Err(ServeError::Closed));
        }
        for t in tickets {
            assert_eq!(t.wait(), Err(ServeError::Closed));
        }
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let q = BatchQueue::new();
        let policy = BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(5),
        };
        let _t = q.submit(req()).unwrap();
        let d = q.next_batch(&policy).unwrap();
        assert_eq!(d.batch.len(), 1, "deadline must flush the lone request");
        d.batch[0].fulfill(Err(ServeError::Closed));
    }

    #[test]
    fn close_rejects_new_work_and_drains_the_rest() {
        let q = BatchQueue::new();
        let t = q.submit(req()).unwrap();
        q.close();
        assert_eq!(q.submit(req()).unwrap_err(), ServeError::Closed);
        let policy = BatchPolicy::default();
        let d = q.next_batch(&policy).unwrap();
        assert_eq!(d.batch.len(), 1);
        d.batch[0].fulfill(Err(ServeError::Closed));
        let _ = t.wait();
        assert!(q.next_batch(&policy).is_none(), "closed + empty ends the dispatcher");
    }

    #[test]
    fn tickets_resolve_across_threads() {
        let q = Arc::new(BatchQueue::new());
        let qq = Arc::clone(&q);
        let waiter = std::thread::spawn(move || {
            let t = qq.submit(req()).unwrap();
            t.wait()
        });
        let policy = BatchPolicy {
            max_batch: 1,
            max_wait: Duration::from_millis(1),
        };
        let d = q.next_batch(&policy).unwrap();
        d.batch[0].fulfill(Ok(InferResponse {
            energy: -1.5,
            forces: None,
            version: 7,
            degraded: false,
            fidelity: Fidelity::Master,
        }));
        let resp = waiter.join().unwrap().unwrap();
        assert_eq!(resp.energy, -1.5);
        assert_eq!(resp.version, 7);
    }

    #[test]
    fn capacity_rejects_with_overloaded_and_sheds_bulk_first() {
        let stats = Arc::new(ServeStats::new());
        let q = BatchQueue::bounded(2, Arc::clone(&stats));
        let b1 = q.submit(req().bulk()).unwrap();
        let b2 = q.submit(req().bulk()).unwrap();
        // Full. A bulk arrival is rejected outright…
        match q.submit(req().bulk()).unwrap_err() {
            ServeError::Overloaded { depth, capacity } => {
                assert_eq!((depth, capacity), (2, 2));
            }
            e => panic!("expected Overloaded, got {e}"),
        }
        // …an interactive arrival evicts the newest bulk request.
        let _i = q.submit(req()).unwrap();
        assert_eq!(q.depth(), 2, "depth never exceeds capacity");
        assert!(
            matches!(b2.wait(), Err(ServeError::Overloaded { .. })),
            "the evicted bulk ticket resolves with a typed error"
        );
        // The next interactive arrival evicts the remaining bulk
        // request (b1); after that the queue is all-interactive, so a
        // further interactive arrival has nothing to evict and is
        // rejected itself.
        let _i2 = q.submit(req()).unwrap();
        assert!(
            matches!(b1.wait(), Err(ServeError::Overloaded { .. })),
            "b1 was evicted by the second interactive arrival"
        );
        assert!(matches!(
            q.submit(req()).unwrap_err(),
            ServeError::Overloaded { .. }
        ));
        assert_eq!(stats.shed.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn dispatcher_drains_interactive_lane_first() {
        let q = BatchQueue::new();
        let _b = q.submit(req().bulk()).unwrap();
        let _i = q.submit(req()).unwrap();
        let d = q
            .next_batch(&BatchPolicy { max_batch: 1, max_wait: Duration::from_millis(1) })
            .unwrap();
        assert_eq!(d.batch[0].request().priority, Priority::Interactive);
        assert_eq!(d.interactive_depth, 1);
        assert_eq!(d.bulk_depth, 1);
    }

    #[test]
    fn wait_timeout_returns_none_then_the_result() {
        let q = BatchQueue::new();
        let t = q.submit(req()).unwrap();
        assert!(
            t.wait_timeout(Duration::from_millis(5)).is_none(),
            "nothing fulfilled yet"
        );
        let d = q
            .next_batch(&BatchPolicy { max_batch: 1, max_wait: Duration::from_millis(1) })
            .unwrap();
        d.batch[0].fulfill(Err(ServeError::EvalFailed("test".into())));
        assert_eq!(
            t.wait_timeout(Duration::from_secs(5)),
            Some(Err(ServeError::EvalFailed("test".into())))
        );
    }

    #[test]
    fn dropping_an_unfulfilled_pending_resolves_the_ticket() {
        let q = BatchQueue::new();
        let t = q.submit(req()).unwrap();
        let d = q
            .next_batch(&BatchPolicy { max_batch: 1, max_wait: Duration::from_millis(1) })
            .unwrap();
        drop(d.batch); // dispatcher "dies" holding the batch
        assert_eq!(t.wait(), Err(ServeError::Closed));
    }

    #[test]
    fn fulfill_is_idempotent_first_result_wins() {
        let q = BatchQueue::new();
        let t = q.submit(req()).unwrap();
        let d = q
            .next_batch(&BatchPolicy { max_batch: 1, max_wait: Duration::from_millis(1) })
            .unwrap();
        d.batch[0].fulfill(Err(ServeError::EvalFailed("first".into())));
        d.batch[0].fulfill(Err(ServeError::EvalFailed("second".into())));
        assert_eq!(t.wait(), Err(ServeError::EvalFailed("first".into())));
    }

    #[test]
    fn reject_remaining_fulfills_queued_requests() {
        let q = BatchQueue::new();
        let t1 = q.submit(req()).unwrap();
        let t2 = q.submit(req().bulk()).unwrap();
        q.close();
        q.reject_remaining();
        assert_eq!(t1.wait(), Err(ServeError::Closed));
        assert_eq!(t2.wait(), Err(ServeError::Closed));
        assert_eq!(q.depth(), 0);
    }
}
