//! Request submission and micro-batch coalescing.
//!
//! Clients on any thread [`BatchQueue::submit`] an [`InferRequest`]
//! and block on the returned [`Ticket`]. A single dispatcher (the
//! engine) drains the queue into micro-batches under a
//! [`BatchPolicy`]: a batch closes when it reaches `max_batch`
//! requests or when `max_wait` has elapsed since its *oldest* request
//! arrived — the standard size-or-deadline policy that bounds both
//! per-request latency and per-batch overhead. Everything is plain
//! threads and condvars (async-free by design: the compute below is
//! CPU-bound and runs on `dp-pool`).

use dp_data::dataset::Snapshot;
use dp_mdsim::Vec3;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One inference request: a frame, and whether forces are wanted
/// (energy-only requests skip the reverse sweep).
#[derive(Clone, Debug)]
pub struct InferRequest {
    /// The configuration to evaluate (labels are ignored).
    pub frame: Snapshot,
    /// Compute forces too?
    pub want_forces: bool,
}

/// The served result, tagged with the snapshot that computed it.
#[derive(Clone, Debug, PartialEq)]
pub struct InferResponse {
    /// Total predicted energy (eV).
    pub energy: f64,
    /// Forces (eV/Å) when requested.
    pub forces: Option<Vec<Vec3>>,
    /// Version of the published snapshot that served this request —
    /// every value in this response came from exactly this snapshot.
    pub version: u64,
}

/// Why a request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The engine is shutting down; no new requests are accepted.
    Closed,
    /// The request cannot be evaluated by the served model.
    BadRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "serving engine is closed"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Micro-batching policy.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Upper bound on requests per dispatched batch.
    pub max_batch: usize,
    /// Upper bound on how long the oldest pending request may wait for
    /// the batch to fill before it is dispatched anyway.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Completion slot shared between a [`Ticket`] and the dispatcher.
#[derive(Debug, Default)]
struct ResponseSlot {
    result: Mutex<Option<Result<InferResponse, ServeError>>>,
    done: Condvar,
}

/// A pending request's handle; [`Ticket::wait`] blocks until the
/// engine responds.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Block until the response is available.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        let mut guard = self
            .slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = self
                .slot
                .done
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One queued request with its completion slot and arrival time.
pub(crate) struct Pending {
    pub(crate) req: InferRequest,
    pub(crate) submitted: Instant,
    slot: Arc<ResponseSlot>,
}

impl Pending {
    /// Fulfill the request (any thread; wakes the waiting client).
    pub(crate) fn fulfill(&self, result: Result<InferResponse, ServeError>) {
        let mut guard = self
            .slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *guard = Some(result);
        self.slot.done.notify_all();
    }
}

struct QueueState {
    pending: VecDeque<Pending>,
    closed: bool,
}

/// Thread-safe submission queue with size-or-deadline batch draining.
pub struct BatchQueue {
    state: Mutex<QueueState>,
    arrived: Condvar,
}

impl Default for BatchQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchQueue {
    /// An open, empty queue.
    pub fn new() -> Self {
        BatchQueue {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            arrived: Condvar::new(),
        }
    }

    /// Enqueue a request. Returns the ticket the client blocks on, or
    /// [`ServeError::Closed`] after [`BatchQueue::close`].
    pub fn submit(&self, req: InferRequest) -> Result<Ticket, ServeError> {
        let slot = Arc::new(ResponseSlot::default());
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.closed {
                return Err(ServeError::Closed);
            }
            st.pending.push_back(Pending {
                req,
                submitted: Instant::now(),
                slot: Arc::clone(&slot),
            });
        }
        self.arrived.notify_all();
        Ok(Ticket { slot })
    }

    /// Number of requests currently queued.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pending
            .len()
    }

    /// Refuse new submissions and wake the dispatcher so it can drain
    /// what is left.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        drop(st);
        self.arrived.notify_all();
    }

    /// Dispatcher side: block for the next micro-batch. Returns the
    /// drained batch plus the queue depth at drain time, or `None`
    /// once the queue is closed *and* empty.
    ///
    /// The coalescing rule: wait until `max_batch` requests are
    /// pending, or until `max_wait` has passed since the oldest
    /// pending request arrived, whichever is first. A closed queue
    /// dispatches immediately (drain fast, don't make a shutdown wait
    /// out the deadline).
    pub(crate) fn next_batch(&self, policy: &BatchPolicy) -> Option<(Vec<Pending>, usize)> {
        let max_batch = policy.max_batch.max(1);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !st.pending.is_empty() {
                break;
            }
            if st.closed {
                return None;
            }
            st = self.arrived.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let deadline = st.pending.front().map(|p| p.submitted + policy.max_wait);
        while st.pending.len() < max_batch && !st.closed {
            let Some(deadline) = deadline else { break };
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .arrived
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let depth = st.pending.len();
        let take = depth.min(max_batch);
        let batch: Vec<Pending> = st.pending.drain(..take).collect();
        Some((batch, depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_mdsim::Vec3;

    fn req() -> InferRequest {
        InferRequest {
            frame: Snapshot {
                cell: [10.0; 3],
                types: vec![0],
                type_names: vec!["A".into()],
                pos: vec![Vec3::new(1.0, 1.0, 1.0)],
                energy: 0.0,
                forces: vec![Vec3::ZERO],
                temperature: 0.0,
            },
            want_forces: false,
        }
    }

    #[test]
    fn full_batch_dispatches_without_waiting_out_the_deadline() {
        let q = BatchQueue::new();
        let policy = BatchPolicy {
            max_batch: 3,
            max_wait: Duration::from_secs(3600),
        };
        let tickets: Vec<_> = (0..5).map(|_| q.submit(req()).unwrap()).collect();
        let t0 = Instant::now();
        let (batch, depth) = q.next_batch(&policy).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(10), "must not block on the deadline");
        assert_eq!(batch.len(), 3);
        assert_eq!(depth, 5);
        // The 2 leftovers can't fill a batch of 3; flush them with a
        // short deadline instead of waiting out the hour-long one.
        let flush = BatchPolicy {
            max_batch: 3,
            max_wait: Duration::from_millis(1),
        };
        let (batch2, depth2) = q.next_batch(&flush).unwrap();
        assert_eq!(batch2.len(), 2);
        assert_eq!(depth2, 2);
        // Fulfill so the tickets don't dangle.
        for p in batch.iter().chain(batch2.iter()) {
            p.fulfill(Err(ServeError::Closed));
        }
        for t in tickets {
            assert_eq!(t.wait(), Err(ServeError::Closed));
        }
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let q = BatchQueue::new();
        let policy = BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(5),
        };
        let _t = q.submit(req()).unwrap();
        let (batch, _) = q.next_batch(&policy).unwrap();
        assert_eq!(batch.len(), 1, "deadline must flush the lone request");
        batch[0].fulfill(Err(ServeError::Closed));
    }

    #[test]
    fn close_rejects_new_work_and_drains_the_rest() {
        let q = BatchQueue::new();
        let t = q.submit(req()).unwrap();
        q.close();
        assert_eq!(q.submit(req()).unwrap_err(), ServeError::Closed);
        let policy = BatchPolicy::default();
        let (batch, _) = q.next_batch(&policy).unwrap();
        assert_eq!(batch.len(), 1);
        batch[0].fulfill(Err(ServeError::Closed));
        let _ = t.wait();
        assert!(q.next_batch(&policy).is_none(), "closed + empty ends the dispatcher");
    }

    #[test]
    fn tickets_resolve_across_threads() {
        let q = Arc::new(BatchQueue::new());
        let qq = Arc::clone(&q);
        let waiter = std::thread::spawn(move || {
            let t = qq.submit(req()).unwrap();
            t.wait()
        });
        let policy = BatchPolicy {
            max_batch: 1,
            max_wait: Duration::from_millis(1),
        };
        let (batch, _) = q.next_batch(&policy).unwrap();
        batch[0].fulfill(Ok(InferResponse {
            energy: -1.5,
            forces: None,
            version: 7,
        }));
        let resp = waiter.join().unwrap().unwrap();
        assert_eq!(resp.energy, -1.5);
        assert_eq!(resp.version, 7);
    }
}
