//! The serving engine: one dispatcher thread draining the
//! [`BatchQueue`], computing each micro-batch against the current
//! snapshots of the models it serves, with the per-frame work fanned
//! across `dp-pool`.
//!
//! An engine serves a whole [`ModelTable`] (model-id → registry); the
//! single-model constructors are the `model == 0` special case. A
//! request naming an id outside the table resolves with
//! [`ServeError::UnknownModel`] before any compute is spent.
//!
//! Consistency contract: the dispatcher takes **one** snapshot per
//! *model* per batch, so every request in a batch — and every number
//! inside one response — is computed against exactly one published
//! snapshot of its model. A hot-swap lands between batches, never
//! inside one.
//!
//! Determinism contract: requests are independent (each one reads the
//! snapshot and writes only its own response slot), so batching K
//! frames is bitwise identical to K sequential single-frame calls at
//! any `DP_POOL_THREADS` — the same argument as the training-side
//! frame parallelism (DESIGN §8), with the combine step degenerate
//! because nothing is reduced across requests.
//!
//! Overload contract (DESIGN §12): under an [`SloPolicy`] the engine
//! sheds work it cannot serve within policy — typed, never silent.
//! Admission control lives in the queue ([`ServeError::Overloaded`]);
//! the dispatcher sheds requests whose deadline is already unmeetable
//! ([`ServeError::DeadlineExceeded`]), degrades to energy-only
//! responses under sustained queue pressure, and trips a circuit
//! breaker off a snapshot that keeps failing evaluation, routing
//! batches back to the last-good registry version. A seeded
//! [`ChaosPlan`] can inject dispatcher stalls and poisoned requests
//! for soak testing; production passes [`ChaosPlan::none`].

use crate::batch::{
    BatchPolicy, BatchQueue, Fidelity, InferRequest, InferResponse, Pending, ServeError, Ticket,
};
use crate::chaos::ChaosPlan;
use crate::registry::{ModelRegistry, ModelTable, PublishedModel};
use crate::slo::{CircuitBreaker, DegradeController, SloPolicy};
use crate::stats::{ServeStats, StatsSnapshot};
use crate::tenant::{TenantStats, TenantTable};
use dp_data::dataset::Snapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct Shared {
    /// Every model this engine serves, by id.
    models: Arc<ModelTable>,
    /// The default model's registry (id 0, or the lowest id) — the
    /// single-model API surface and the stats-folding anchor.
    registry: Arc<ModelRegistry>,
    /// Per-tenant accounting, shared across a fleet's shards.
    tenants: Arc<TenantTable>,
    queue: BatchQueue,
    stats: Arc<ServeStats>,
    slo: SloPolicy,
    chaos: ChaosPlan,
    /// Engine-wide default tier for `Fidelity::Auto` requests, read
    /// once from `DP_FIDELITY` at startup.
    default_fidelity: Fidelity,
}

/// A running inference engine. Submissions are accepted from any
/// thread; shutdown (explicit or on drop) drains the queue before the
/// dispatcher exits, so every accepted request gets a response.
pub struct Engine {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// Start the dispatcher over `registry` with the given batching
    /// policy and no overload protection beyond the circuit breaker
    /// (the pre-SLO behavior; see [`SloPolicy::unbounded`]).
    pub fn start(registry: Arc<ModelRegistry>, policy: BatchPolicy) -> Arc<Engine> {
        Self::start_slo(registry, SloPolicy::unbounded(policy))
    }

    /// Start the dispatcher under a full [`SloPolicy`]: bounded queue,
    /// priority lanes, deadline shedding, degradation, breaker.
    pub fn start_slo(registry: Arc<ModelRegistry>, slo: SloPolicy) -> Arc<Engine> {
        Self::start_chaos(registry, slo, ChaosPlan::none())
    }

    /// [`Engine::start_slo`] with seeded chaos injection (dispatcher
    /// stalls, poisoned requests) — the soak harness's entry point.
    pub fn start_chaos(
        registry: Arc<ModelRegistry>,
        slo: SloPolicy,
        chaos: ChaosPlan,
    ) -> Arc<Engine> {
        let models = ModelTable::single(registry);
        Self::start_shard(models, slo, chaos, Arc::new(TenantTable::new()))
    }

    /// Start a fleet shard: a dispatcher over a full [`ModelTable`]
    /// with per-tenant accounting into a (typically shared)
    /// [`TenantTable`]. The table must hold at least one model; id 0
    /// (or, failing that, the lowest id) becomes the default model the
    /// single-model API surface ([`Engine::registry`],
    /// [`Engine::infer`]) operates on.
    pub fn start_shard(
        models: Arc<ModelTable>,
        slo: SloPolicy,
        chaos: ChaosPlan,
        tenants: Arc<TenantTable>,
    ) -> Arc<Engine> {
        let default_id = models
            .ids()
            .first()
            .copied()
            .expect("dp-serve: an engine needs at least one model");
        let registry = models
            .get(default_id)
            .expect("dp-serve: default model disappeared during startup");
        let stats = Arc::new(ServeStats::new());
        let shared = Arc::new(Shared {
            models,
            registry,
            tenants,
            queue: BatchQueue::bounded(slo.queue_capacity, Arc::clone(&stats)),
            stats,
            slo,
            chaos,
            default_fidelity: Fidelity::from_env(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("dp-serve".into())
            .spawn(move || dispatch_loop(&worker_shared))
            .expect("dp-serve: failed to spawn dispatcher");
        Arc::new(Engine {
            shared,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// Enqueue a request; block on the ticket for the response.
    pub fn submit(&self, req: InferRequest) -> Result<Ticket, ServeError> {
        self.shared.queue.submit(req)
    }

    /// Convenience: submit one interactive frame and wait for its
    /// response.
    pub fn infer(&self, frame: Snapshot, want_forces: bool) -> Result<InferResponse, ServeError> {
        self.submit(InferRequest::new(frame, want_forces))?.wait()
    }

    /// The default model's registry (publish into it to hot-swap the
    /// model the single-model API serves).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Every model this engine serves, by id. Insert into the table to
    /// bring a new model online; requests name it via
    /// [`InferRequest::for_model`].
    pub fn models(&self) -> &Arc<ModelTable> {
        &self.shared.models
    }

    /// Per-tenant accounting (shared across shards in a fleet).
    pub fn tenants(&self) -> &Arc<TenantTable> {
        &self.shared.tenants
    }

    /// The policy the engine runs under.
    pub fn slo(&self) -> &SloPolicy {
        &self.shared.slo
    }

    /// Requests currently queued (not yet dispatched).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Point-in-time serving statistics. Folds the current snapshot's
    /// live geometry-cache counters in with those of retired
    /// snapshots.
    pub fn stats(&self) -> StatsSnapshot {
        let current = self.shared.registry.current();
        let live = current.cache.stats();
        let mut snap = self.shared.stats.snapshot(self.shared.registry.swap_count());
        let hits = self.shared.stats.cache_hits.load(Ordering::Relaxed) + live.hits;
        let misses =
            self.shared.stats.cache_misses.load(Ordering::Relaxed) + live.misses;
        snap.cache_hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        snap
    }

    /// Raw access to the engine's counters (the bench binary reports
    /// through this).
    pub fn raw_stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Stop accepting requests, drain what is queued, and join the
    /// dispatcher. Requests still queued when the dispatcher exits —
    /// it drains everything in the normal case, so this only covers a
    /// dispatcher that died — are fulfilled with
    /// [`ServeError::Closed`], never stranded. Idempotent.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let handle = self
            .worker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        // Safety net: a panicked dispatcher leaves the queue non-empty.
        self.shared.queue.reject_remaining();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reject requests the snapshot cannot evaluate (instead of letting a
/// malformed frame panic the dispatcher).
fn validate(req: &InferRequest, snapshot: &PublishedModel) -> Result<(), ServeError> {
    let n_types = snapshot.model.cfg.n_types;
    if req.frame.pos.len() != req.frame.types.len() {
        return Err(ServeError::BadRequest(format!(
            "{} positions for {} type ids",
            req.frame.pos.len(),
            req.frame.types.len()
        )));
    }
    if req.frame.types.is_empty() {
        return Err(ServeError::BadRequest("empty frame".into()));
    }
    if let Some(&t) = req.frame.types.iter().find(|&&t| t >= n_types) {
        return Err(ServeError::BadRequest(format!(
            "type id {t} out of range for a {n_types}-species model"
        )));
    }
    Ok(())
}

/// Per-request outcome codes fed to the circuit breaker after the
/// parallel fan-out (plain `u8`s behind atomics so worker threads can
/// write them without locks).
const OUTCOME_CLIENT_ERR: u8 = 0;
const OUTCOME_OK: u8 = 1;
const OUTCOME_EVAL_FAILED: u8 = 2;

/// Resolve which tier serves a request: an explicit request pin wins,
/// then the engine-wide `DP_FIDELITY` default, then the `Auto` policy
/// (degraded or energy-only traffic → quantized, force requests →
/// compressed). A resolved tier the snapshot doesn't carry falls back
/// toward the master (quantized → compressed → master), so routing
/// never fails a request — the response's fidelity tag names what
/// actually served it. Master-only publishes therefore serve
/// everything from the master, bitwise identical to the pre-routing
/// engine.
fn resolve_fidelity(
    requested: Fidelity,
    engine_default: Fidelity,
    want_forces: bool,
    degraded: bool,
    snapshot: &PublishedModel,
) -> Fidelity {
    let mut choice = if requested != Fidelity::Auto { requested } else { engine_default };
    if choice == Fidelity::Auto {
        choice = if degraded || !want_forces {
            Fidelity::Quantized
        } else {
            Fidelity::Compressed
        };
    }
    if choice == Fidelity::Quantized && snapshot.quantized.is_none() {
        choice = Fidelity::Compressed;
    }
    if choice == Fidelity::Compressed && snapshot.compressed.is_none() {
        choice = Fidelity::Master;
    }
    choice
}

fn dispatch_loop(shared: &Shared) {
    // Per model id: the snapshot last served from (so a swap can fold
    // the retired snapshot's cache counters into the engine-lifetime
    // stats) and a circuit breaker (one model's poisoned snapshot must
    // not take the whole engine's traffic with it).
    let mut last: HashMap<u64, Arc<PublishedModel>> = HashMap::new();
    let mut breakers: HashMap<u64, CircuitBreaker> = HashMap::new();
    let mut degrade = DegradeController::new(&shared.slo);
    let mut batch_idx: u64 = 0;
    let mut req_idx: u64 = 0;
    // EWMA of per-request service time, the projection used for
    // deadline shedding (0 until the first batch completes).
    let mut ewma_service_ns: f64 = 0.0;
    while let Some(drained) = shared.queue.next_batch(&shared.slo.batch) {
        if shared.chaos.stalls(batch_idx) {
            std::thread::sleep(shared.chaos.stall);
        }
        batch_idx += 1;
        shared.stats.record_batch(
            drained.batch.len(),
            drained.depth,
            drained.interactive_depth,
            drained.bulk_depth,
        );
        let degraded = degrade.observe(drained.depth);

        // Deadline shedding, before any compute is spent: a request
        // whose budget is already blown — or provably will be once the
        // projected service time is added — resolves with a typed
        // error instead of a late answer.
        let projection = if shared.slo.shed_projected {
            Duration::from_nanos(ewma_service_ns as u64)
        } else {
            Duration::ZERO
        };
        let mut eval: Vec<Pending> = Vec::with_capacity(drained.batch.len());
        for p in drained.batch {
            if let Some(budget) = p.request().deadline {
                let waited = p.submitted().elapsed();
                if waited + projection > budget {
                    shared.stats.record_deadline_miss();
                    shared.stats.record_request(waited.as_nanos() as u64);
                    shared
                        .tenants
                        .handle(p.request().tenant)
                        .record(waited.as_nanos() as u64, false, false);
                    p.fulfill(Err(ServeError::DeadlineExceeded { waited, budget }));
                    continue;
                }
            }
            eval.push(p);
        }
        if eval.is_empty() {
            continue;
        }

        // Resolve one snapshot per distinct model id in the batch
        // (first-seen order — deterministic given the batch contents).
        // Per model, the breaker may route to the last-good version.
        let mut snaps: Vec<Arc<PublishedModel>> = Vec::new();
        let mut snap_models: Vec<u64> = Vec::new();
        let mut snap_of: HashMap<u64, Option<usize>> = HashMap::new();
        for p in &eval {
            let id = p.request().model;
            if snap_of.contains_key(&id) {
                continue;
            }
            let resolved = shared.models.get(id).map(|reg| {
                let current = reg.current();
                let breaker = breakers
                    .entry(id)
                    .or_insert_with(|| CircuitBreaker::new(shared.slo.breaker_threshold));
                let routed = breaker.route(current.version);
                let snapshot = if routed == current.version {
                    current
                } else {
                    // Route around the poisoned snapshot; if the
                    // fallback was pruned, there is nothing better
                    // than current.
                    reg.snapshot_at(routed).unwrap_or(current)
                };
                if let Some(prev) = last.get(&id) {
                    if prev.version != snapshot.version {
                        let retired = prev.cache.stats();
                        shared.stats.record_cache(retired.hits, retired.misses);
                    }
                }
                last.insert(id, Arc::clone(&snapshot));
                snap_models.push(id);
                snaps.push(snapshot);
                snaps.len() - 1
            });
            snap_of.insert(id, resolved);
        }

        // Fulfill unknown-model requests with the typed error before
        // any fan-out; pre-resolve each surviving request's snapshot
        // index and tenant handle so workers never touch a lock.
        let mut batch: Vec<Pending> = Vec::with_capacity(eval.len());
        let mut snap_idx: Vec<usize> = Vec::with_capacity(eval.len());
        let mut tenant_stats: Vec<Arc<TenantStats>> = Vec::with_capacity(eval.len());
        for p in eval {
            let id = p.request().model;
            match snap_of[&id] {
                None => {
                    let waited = p.submitted().elapsed().as_nanos() as u64;
                    shared.stats.record_request(waited);
                    shared.tenants.handle(p.request().tenant).record(waited, false, false);
                    p.fulfill(Err(ServeError::UnknownModel { model: id }));
                }
                Some(si) => {
                    snap_idx.push(si);
                    tenant_stats.push(shared.tenants.handle(p.request().tenant));
                    batch.push(p);
                }
            }
        }
        if batch.is_empty() {
            continue;
        }

        let outcomes: Vec<AtomicU8> =
            (0..batch.len()).map(|_| AtomicU8::new(OUTCOME_CLIENT_ERR)).collect();
        let t_eval = Instant::now();
        let batch_ref = &batch;
        let outcomes_ref = &outcomes;
        let snaps_ref = &snaps;
        let snap_idx_ref = &snap_idx;
        let tenants_ref = &tenant_stats;
        let stats_ref = &shared.stats;
        let chaos_ref = &shared.chaos;
        let default_fidelity = shared.default_fidelity;
        dp_pool::parallel_for(batch.len(), &|i| {
            let pending = &batch_ref[i];
            let snapshot_ref = &snaps_ref[snap_idx_ref[i]];
            let result = match validate(&pending.req, snapshot_ref) {
                Err(e) => Err(e),
                Ok(()) if chaos_ref.poisons(req_idx + i as u64) => {
                    outcomes_ref[i].store(OUTCOME_EVAL_FAILED, Ordering::Relaxed);
                    stats_ref.record_eval_failure();
                    Err(ServeError::EvalFailed("chaos-poisoned request".into()))
                }
                Ok(()) => {
                    let fidelity = resolve_fidelity(
                        pending.req.fidelity,
                        default_fidelity,
                        pending.req.want_forces,
                        degraded,
                        snapshot_ref,
                    );
                    // The quantized tier never serves forces; routing a
                    // forces request there (explicit pin or degraded
                    // service) drops them, flagged via `degraded`.
                    let serve_forces =
                        pending.req.want_forces && !degraded && fidelity != Fidelity::Quantized;
                    let (energy, forces) = match fidelity {
                        Fidelity::Quantized => {
                            let q = snapshot_ref.quantized.as_ref().expect("resolved tier exists");
                            (q.energy_keyed(&snapshot_ref.cache, &pending.req.frame), None)
                        }
                        Fidelity::Compressed => {
                            let c = snapshot_ref.compressed.as_ref().expect("resolved tier exists");
                            let pass = c.forward_keyed(&snapshot_ref.cache, &pending.req.frame);
                            (pass.energy, serve_forces.then(|| c.forces(&pass)))
                        }
                        _ => {
                            let model = &snapshot_ref.model;
                            let pass = model.forward_keyed(&snapshot_ref.cache, &pending.req.frame);
                            (pass.energy, serve_forces.then(|| model.forces(&pass)))
                        }
                    };
                    let finite = energy.is_finite()
                        && forces
                            .as_ref()
                            .is_none_or(|fs| fs.iter().all(|f| f.0.iter().all(|v| v.is_finite())));
                    if finite {
                        outcomes_ref[i].store(OUTCOME_OK, Ordering::Relaxed);
                        let was_degraded = pending.req.want_forces && !serve_forces;
                        if was_degraded {
                            stats_ref.record_degraded();
                        }
                        Ok(InferResponse {
                            energy,
                            forces,
                            version: snapshot_ref.version,
                            degraded: was_degraded,
                            fidelity,
                        })
                    } else {
                        outcomes_ref[i].store(OUTCOME_EVAL_FAILED, Ordering::Relaxed);
                        stats_ref.record_eval_failure();
                        Err(ServeError::EvalFailed(format!(
                            "non-finite model output from snapshot v{}",
                            snapshot_ref.version
                        )))
                    }
                }
            };
            let latency_ns = pending.submitted.elapsed().as_nanos() as u64;
            stats_ref.record_request(latency_ns);
            let (ok, was_degraded) = match &result {
                Ok(r) => (true, r.degraded),
                Err(_) => (false, false),
            };
            tenants_ref[i].record(latency_ns, ok, was_degraded);
            pending.fulfill(result);
        });
        req_idx += batch.len() as u64;
        let per_req_ns = t_eval.elapsed().as_nanos() as f64 / batch.len() as f64;
        ewma_service_ns = if ewma_service_ns == 0.0 {
            per_req_ns
        } else {
            0.8 * ewma_service_ns + 0.2 * per_req_ns
        };
        // Feed each model's breaker in index order (deterministic given
        // the batch contents — the parallel fan-out only wrote codes).
        for (i, o) in outcomes.iter().enumerate() {
            let si = snap_idx[i];
            let version = snaps[si].version;
            let breaker = breakers
                .get_mut(&snap_models[si])
                .expect("breaker exists for every served model");
            match o.load(Ordering::Relaxed) {
                OUTCOME_OK => {
                    breaker.on_result(version, true);
                }
                OUTCOME_EVAL_FAILED if breaker.on_result(version, false) => {
                    shared.stats.record_breaker_trip();
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{demo_frame as frame, demo_model as model};
    use crate::slo::Priority;
    use std::time::Duration;

    fn engine(seed: u64) -> Arc<Engine> {
        let registry = Arc::new(ModelRegistry::new(model(seed)));
        Engine::start(registry, BatchPolicy::default())
    }

    /// A model whose every evaluation is non-finite (NaN weights pass
    /// config validation — catching them is the breaker's job).
    fn poisoned_model(seed: u64) -> deepmd_core::model::DeepPotModel {
        let mut m = model(seed);
        let n = m.get_params().len();
        m.set_params(&vec![f64::NAN; n]);
        m
    }

    #[test]
    fn served_response_matches_direct_prediction_bitwise() {
        let e = engine(5);
        let f = frame(9);
        let direct = e.registry().current().model.predict(&f);
        let resp = e.infer(f, true).unwrap();
        assert_eq!(resp.energy.to_bits(), direct.energy.to_bits());
        let forces = resp.forces.unwrap();
        assert_eq!(forces.len(), direct.forces.len());
        for (a, b) in forces.iter().zip(&direct.forces) {
            assert_eq!(a.0.map(f64::to_bits), b.0.map(f64::to_bits));
        }
        assert_eq!(resp.version, 1);
        assert!(!resp.degraded);
        e.shutdown();
    }

    /// An engine over a snapshot that carries all three tiers.
    fn tiered_engine(seed: u64) -> Arc<Engine> {
        use deepmd_core::compress::{CompressSpec, CompressedModel};
        use deepmd_core::quant::QuantizedModel;
        let m = model(seed);
        let comp = CompressedModel::compress(&m, &CompressSpec::default()).unwrap();
        let quant = QuantizedModel::quantize(&comp, &[frame(1), frame(2)]).unwrap();
        let registry = Arc::new(ModelRegistry::new(model(seed)));
        registry.publish_with_artifacts(m, Some(comp), Some(quant)).unwrap();
        Engine::start(registry, BatchPolicy::default())
    }

    #[test]
    fn auto_routes_forces_to_compressed_and_energy_to_quantized() {
        let e = tiered_engine(5);
        let f = frame(9);
        let direct = e.registry().current().model.predict(&f);
        let with_forces = e.infer(f.clone(), true).unwrap();
        assert_eq!(with_forces.fidelity, Fidelity::Compressed);
        assert!(!with_forces.degraded);
        let n_atoms = f.types.len() as f64;
        assert!((with_forces.energy - direct.energy).abs() / n_atoms < 1e-3);
        for (a, b) in with_forces.forces.unwrap().iter().zip(&direct.forces) {
            for c in 0..3 {
                assert!((a.0[c] - b.0[c]).abs() < 1e-2);
            }
        }
        let energy_only = e.infer(f, false).unwrap();
        assert_eq!(energy_only.fidelity, Fidelity::Quantized);
        assert!(energy_only.forces.is_none());
        assert!(!energy_only.degraded);
        assert!((energy_only.energy - direct.energy).abs() / n_atoms < 1e-3);
        e.shutdown();
    }

    #[test]
    fn pinned_master_stays_bitwise_on_a_tiered_snapshot() {
        let e = tiered_engine(6);
        let f = frame(10);
        let direct = e.registry().current().model.predict(&f);
        let resp = e
            .submit(InferRequest::new(f, true).with_fidelity(Fidelity::Master))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.fidelity, Fidelity::Master);
        assert_eq!(resp.energy.to_bits(), direct.energy.to_bits());
        for (a, b) in resp.forces.unwrap().iter().zip(&direct.forces) {
            assert_eq!(a.0.map(f64::to_bits), b.0.map(f64::to_bits));
        }
        e.shutdown();
    }

    #[test]
    fn quantized_pin_drops_forces_and_flags_degraded() {
        let e = tiered_engine(7);
        let resp = e
            .submit(InferRequest::new(frame(11), true).with_fidelity(Fidelity::Quantized))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.fidelity, Fidelity::Quantized);
        assert!(resp.forces.is_none());
        assert!(resp.degraded, "requested forces were dropped — must be flagged");
        e.shutdown();
    }

    #[test]
    fn absent_tiers_fall_back_to_the_master_bitwise() {
        // Master-only snapshot: every pin resolves to the master, so
        // pre-routing behavior (and its bitwise contract) is preserved.
        let e = engine(8);
        let f = frame(12);
        let direct = e.registry().current().model.predict(&f);
        for pin in [Fidelity::Auto, Fidelity::Compressed, Fidelity::Quantized] {
            let resp = e
                .submit(InferRequest::new(f.clone(), true).with_fidelity(pin))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(resp.fidelity, Fidelity::Master, "pin {pin} on master-only snapshot");
            assert_eq!(resp.energy.to_bits(), direct.energy.to_bits());
            assert!(!resp.degraded);
            assert!(resp.forces.is_some());
        }
        e.shutdown();
    }

    #[test]
    fn energy_only_requests_skip_forces() {
        let e = engine(6);
        let resp = e.infer(frame(3), false).unwrap();
        assert!(resp.energy.is_finite());
        assert!(resp.forces.is_none());
        assert!(!resp.degraded, "energy-only by request is not degradation");
        e.shutdown();
    }

    #[test]
    fn repeated_geometry_hits_the_snapshot_cache() {
        let e = engine(7);
        let f = frame(11);
        let _ = e.infer(f.clone(), false).unwrap();
        let _ = e.infer(f, false).unwrap();
        let stats = e.stats();
        assert!(
            stats.cache_hit_rate > 0.0,
            "second identical geometry must hit: {stats:?}"
        );
        e.shutdown();
    }

    #[test]
    fn malformed_frames_get_a_typed_error_not_a_dead_dispatcher() {
        let e = engine(8);
        let mut bad = frame(2);
        bad.types[0] = 9; // out of range for a 1-species model
        let err = e.infer(bad, false).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "got {err}");
        // The dispatcher survived and keeps serving.
        assert!(e.infer(frame(4), false).unwrap().energy.is_finite());
        e.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_requests_and_rejects_new_ones() {
        let registry = Arc::new(ModelRegistry::new(model(9)));
        let e = Engine::start(
            registry,
            BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(50),
            },
        );
        let tickets: Vec<_> = (0..6)
            .map(|i| {
                e.submit(InferRequest::new(frame(20 + i), false)).unwrap()
            })
            .collect();
        e.shutdown();
        for t in tickets {
            assert!(t.wait().unwrap().energy.is_finite(), "accepted request must be served");
        }
        assert_eq!(
            e.infer(frame(1), false).unwrap_err(),
            ServeError::Closed,
            "post-shutdown submissions are refused"
        );
    }

    #[test]
    fn stats_count_requests_and_batches() {
        let e = engine(10);
        for i in 0..8 {
            let _ = e.infer(frame(30 + i), i % 2 == 0).unwrap();
        }
        let s = e.stats();
        assert_eq!(s.requests, 8);
        assert!(s.batches >= 1 && s.batches <= 8);
        assert!(s.latency_p50_ns.unwrap() > 0.0);
        assert!(s.latency_p99_ns.unwrap() >= s.latency_p50_ns.unwrap());
        e.shutdown();
    }

    #[test]
    fn hot_swap_changes_the_serving_version_between_requests() {
        let e = engine(11);
        let f = frame(40);
        let r1 = e.infer(f.clone(), false).unwrap();
        assert_eq!(r1.version, 1);
        e.registry().publish(model(12)).unwrap();
        let r2 = e.infer(f, false).unwrap();
        assert_eq!(r2.version, 2);
        assert_eq!(e.stats().swaps, 1);
        e.shutdown();
    }

    #[test]
    fn expired_deadline_is_shed_with_a_typed_error() {
        let registry = Arc::new(ModelRegistry::new(model(13)));
        let e = Engine::start_slo(
            registry,
            SloPolicy {
                batch: BatchPolicy { max_batch: 8, max_wait: Duration::from_millis(30) },
                ..SloPolicy::default()
            },
        );
        // A zero budget is blown by the coalescing wait alone.
        let t = e
            .submit(InferRequest::new(frame(1), true).with_deadline(Duration::ZERO))
            .unwrap();
        match t.wait() {
            Err(ServeError::DeadlineExceeded { waited, budget }) => {
                assert_eq!(budget, Duration::ZERO);
                assert!(waited > Duration::ZERO);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // A generous budget is met.
        let ok = e
            .submit(InferRequest::new(frame(2), true).with_deadline(Duration::from_secs(60)))
            .unwrap()
            .wait()
            .unwrap();
        assert!(ok.energy.is_finite());
        assert_eq!(e.stats().deadline_miss, 1);
        e.shutdown();
    }

    #[test]
    fn sustained_pressure_degrades_to_energy_only_and_recovers() {
        let registry = Arc::new(ModelRegistry::new(model(14)));
        let e = Engine::start_slo(
            registry,
            SloPolicy {
                batch: BatchPolicy { max_batch: 4, max_wait: Duration::from_millis(1) },
                ..SloPolicy::always_degraded(BatchPolicy {
                    max_batch: 4,
                    max_wait: Duration::from_millis(1),
                })
            },
        );
        let f = frame(21);
        let resp = e.infer(f.clone(), true).unwrap();
        assert!(resp.degraded, "always-degraded policy must flag the response");
        assert!(resp.forces.is_none(), "degraded response skips forces");
        // The energy is the full path's energy, bitwise.
        let direct = e.registry().current().model.predict(&f);
        assert_eq!(resp.energy.to_bits(), direct.energy.to_bits());
        assert!(e.stats().degraded >= 1);
        e.shutdown();
    }

    #[test]
    fn breaker_routes_around_a_poisoned_snapshot_and_recovers() {
        let registry = Arc::new(ModelRegistry::new(model(15)));
        let e = Engine::start_slo(
            registry,
            SloPolicy {
                batch: BatchPolicy { max_batch: 1, max_wait: Duration::from_micros(100) },
                breaker_threshold: 3,
                ..SloPolicy::default()
            },
        );
        // Healthy v1 establishes last-good.
        assert_eq!(e.infer(frame(1), false).unwrap().version, 1);
        // v2 is poisoned: every evaluation is non-finite.
        e.registry().publish(poisoned_model(16)).unwrap();
        let mut failures = 0;
        for i in 0..3 {
            match e.infer(frame(50 + i), false) {
                Err(ServeError::EvalFailed(_)) => failures += 1,
                other => panic!("expected EvalFailed from poisoned v2, got {other:?}"),
            }
        }
        assert_eq!(failures, 3);
        // The breaker tripped: subsequent requests are served by v1
        // even though the registry's current version is 2.
        let routed = e.infer(frame(60), false).unwrap();
        assert_eq!(routed.version, 1, "poisoned snapshot must be routed around");
        assert!(routed.energy.is_finite());
        assert_eq!(e.registry().current_version(), 2);
        let s = e.stats();
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.eval_failures, 3);
        // A healthy v3 publish closes the breaker.
        e.registry().publish(model(17)).unwrap();
        assert_eq!(e.infer(frame(61), false).unwrap().version, 3);
        e.shutdown();
    }

    #[test]
    fn bulk_lane_is_shed_before_interactive_under_overload() {
        let registry = Arc::new(ModelRegistry::new(model(18)));
        let e = Engine::start_slo(
            registry,
            SloPolicy {
                // max_batch above capacity: the dispatcher holds the
                // queued requests until the coalescing deadline, so the
                // queue deterministically fills to capacity.
                batch: BatchPolicy { max_batch: 8, max_wait: Duration::from_millis(300) },
                queue_capacity: 4,
                ..SloPolicy::default()
            },
        );
        // Fill the queue with bulk work (the dispatcher is waiting out
        // max_wait on the first batch, so these pile up).
        let bulk: Vec<_> = (0..4)
            .filter_map(|i| e.submit(InferRequest::new(frame(70 + i), false).bulk()).ok())
            .collect();
        // Interactive arrivals evict queued bulk rather than being
        // rejected themselves.
        let inter = e.submit(InferRequest::new(frame(80), false));
        assert!(inter.is_ok(), "interactive arrival must be admitted");
        let outcomes: Vec<_> = bulk.into_iter().map(|t| t.wait()).collect();
        let evicted = outcomes
            .iter()
            .filter(|r| matches!(r, Err(ServeError::Overloaded { .. })))
            .count();
        assert!(evicted >= 1, "a queued bulk request must have been evicted: {outcomes:?}");
        assert!(inter.unwrap().wait().is_ok());
        assert!(e.stats().shed >= 1);
        e.shutdown();
    }

    #[test]
    fn chaos_poisoned_requests_fail_typed_and_the_engine_survives() {
        let registry = Arc::new(ModelRegistry::new(model(19)));
        let e = Engine::start_chaos(
            registry,
            SloPolicy {
                batch: BatchPolicy { max_batch: 1, max_wait: Duration::from_micros(100) },
                breaker_threshold: 0, // isolate the poison path
                ..SloPolicy::default()
            },
            ChaosPlan { seed: 4, poison_prob: 1.0, ..ChaosPlan::none() },
        );
        for i in 0..4 {
            match e.infer(frame(90 + i), true) {
                Err(ServeError::EvalFailed(m)) => assert!(m.contains("poisoned")),
                other => panic!("expected chaos poison, got {other:?}"),
            }
        }
        assert_eq!(e.stats().eval_failures, 4);
        e.shutdown();
    }

    #[test]
    fn request_builders_set_lane_and_deadline() {
        let r = InferRequest::new(frame(1), true);
        assert_eq!(r.priority, Priority::Interactive);
        assert_eq!(r.deadline, None);
        assert_eq!((r.model, r.tenant), (0, 0));
        let r = r
            .bulk()
            .with_deadline(Duration::from_millis(7))
            .for_model(3)
            .from_tenant(9);
        assert_eq!(r.priority, Priority::Bulk);
        assert_eq!(r.deadline, Some(Duration::from_millis(7)));
        assert_eq!((r.model, r.tenant), (3, 9));
    }

    #[test]
    fn multi_model_batches_serve_each_id_from_its_own_registry() {
        use crate::registry::ModelTable;
        use crate::tenant::TenantTable;
        let table = ModelTable::single(Arc::new(ModelRegistry::new(model(21))));
        table.insert(5, Arc::new(ModelRegistry::new(model(22))));
        let e = Engine::start_shard(
            Arc::clone(&table),
            SloPolicy::unbounded(BatchPolicy::default()),
            ChaosPlan::none(),
            Arc::new(TenantTable::new()),
        );
        let f = frame(33);
        let d0 = table.get(0).unwrap().current().model.predict(&f);
        let d5 = table.get(5).unwrap().current().model.predict(&f);
        assert_ne!(d0.energy.to_bits(), d5.energy.to_bits(), "distinct models");
        // Same batch, two models: each request must hit its own model.
        let t0 = e.submit(InferRequest::new(f.clone(), false)).unwrap();
        let t5 = e.submit(InferRequest::new(f.clone(), false).for_model(5)).unwrap();
        assert_eq!(t0.wait().unwrap().energy.to_bits(), d0.energy.to_bits());
        assert_eq!(t5.wait().unwrap().energy.to_bits(), d5.energy.to_bits());
        // An unknown id is a typed error, and the engine keeps serving.
        let e9 = e.submit(InferRequest::new(f.clone(), false).for_model(9)).unwrap();
        assert_eq!(e9.wait().unwrap_err(), ServeError::UnknownModel { model: 9 });
        assert!(e.infer(f, false).unwrap().energy.is_finite());
        e.shutdown();
    }

    #[test]
    fn tenants_are_accounted_separately() {
        use crate::registry::ModelTable;
        use crate::tenant::TenantTable;
        let table = ModelTable::single(Arc::new(ModelRegistry::new(model(23))));
        let tenants = Arc::new(TenantTable::new());
        let e = Engine::start_shard(
            table,
            SloPolicy::unbounded(BatchPolicy::default()),
            ChaosPlan::none(),
            Arc::clone(&tenants),
        );
        for i in 0..3 {
            let _ = e
                .submit(InferRequest::new(frame(40 + i), false).from_tenant(1))
                .unwrap()
                .wait()
                .unwrap();
        }
        let bad = e
            .submit(InferRequest::new(frame(44), false).from_tenant(2).for_model(77))
            .unwrap()
            .wait();
        assert!(matches!(bad, Err(ServeError::UnknownModel { model: 77 })));
        let t1 = tenants.get(1).unwrap().snapshot();
        let t2 = tenants.get(2).unwrap().snapshot();
        assert_eq!((t1.requests, t1.ok, t1.errors), (3, 3, 0));
        assert_eq!((t2.requests, t2.ok, t2.errors), (1, 0, 1));
        e.shutdown();
    }
}
