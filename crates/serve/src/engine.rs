//! The serving engine: one dispatcher thread draining the
//! [`BatchQueue`], computing each micro-batch against the registry's
//! current snapshot with the per-frame work fanned across `dp-pool`.
//!
//! Consistency contract: the dispatcher takes **one** snapshot per
//! batch, so every request in a batch — and every number inside one
//! response — is computed against exactly one published model. A
//! hot-swap lands between batches, never inside one.
//!
//! Determinism contract: requests are independent (each one reads the
//! snapshot and writes only its own response slot), so batching K
//! frames is bitwise identical to K sequential single-frame calls at
//! any `DP_POOL_THREADS` — the same argument as the training-side
//! frame parallelism (DESIGN §8), with the combine step degenerate
//! because nothing is reduced across requests.

use crate::batch::{BatchPolicy, BatchQueue, InferRequest, InferResponse, ServeError, Ticket};
use crate::registry::{ModelRegistry, PublishedModel};
use crate::stats::{ServeStats, StatsSnapshot};
use dp_data::dataset::Snapshot;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

struct Shared {
    registry: Arc<ModelRegistry>,
    queue: BatchQueue,
    stats: ServeStats,
    policy: BatchPolicy,
}

/// A running inference engine. Submissions are accepted from any
/// thread; shutdown (explicit or on drop) drains the queue before the
/// dispatcher exits, so every accepted request gets a response.
pub struct Engine {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// Start the dispatcher over `registry` with the given batching
    /// policy.
    pub fn start(registry: Arc<ModelRegistry>, policy: BatchPolicy) -> Arc<Engine> {
        let shared = Arc::new(Shared {
            registry,
            queue: BatchQueue::new(),
            stats: ServeStats::new(),
            policy,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("dp-serve".into())
            .spawn(move || dispatch_loop(&worker_shared))
            .expect("dp-serve: failed to spawn dispatcher");
        Arc::new(Engine {
            shared,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// Enqueue a request; block on the ticket for the response.
    pub fn submit(&self, req: InferRequest) -> Result<Ticket, ServeError> {
        self.shared.queue.submit(req)
    }

    /// Convenience: submit one frame and wait for its response.
    pub fn infer(&self, frame: Snapshot, want_forces: bool) -> Result<InferResponse, ServeError> {
        self.submit(InferRequest { frame, want_forces })?.wait()
    }

    /// The registry this engine serves from (publish into it to
    /// hot-swap the model).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Requests currently queued (not yet dispatched).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Point-in-time serving statistics. Folds the current snapshot's
    /// live geometry-cache counters in with those of retired
    /// snapshots.
    pub fn stats(&self) -> StatsSnapshot {
        let current = self.shared.registry.current();
        let live = current.cache.stats();
        let mut snap = self.shared.stats.snapshot(self.shared.registry.swap_count());
        let hits = self.shared.stats.cache_hits.load(std::sync::atomic::Ordering::Relaxed) + live.hits;
        let misses =
            self.shared.stats.cache_misses.load(std::sync::atomic::Ordering::Relaxed) + live.misses;
        snap.cache_hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        snap
    }

    /// Raw access to the engine's counters (the bench binary reports
    /// through this).
    pub fn raw_stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Stop accepting requests, drain what is queued, and join the
    /// dispatcher. Idempotent.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let handle = self
            .worker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reject requests the snapshot cannot evaluate (instead of letting a
/// malformed frame panic the dispatcher).
fn validate(req: &InferRequest, snapshot: &PublishedModel) -> Result<(), ServeError> {
    let n_types = snapshot.model.cfg.n_types;
    if req.frame.pos.len() != req.frame.types.len() {
        return Err(ServeError::BadRequest(format!(
            "{} positions for {} type ids",
            req.frame.pos.len(),
            req.frame.types.len()
        )));
    }
    if req.frame.types.is_empty() {
        return Err(ServeError::BadRequest("empty frame".into()));
    }
    if let Some(&t) = req.frame.types.iter().find(|&&t| t >= n_types) {
        return Err(ServeError::BadRequest(format!(
            "type id {t} out of range for a {n_types}-species model"
        )));
    }
    Ok(())
}

fn dispatch_loop(shared: &Shared) {
    // The dispatcher remembers the snapshot it last served from so a
    // swap can fold the retired snapshot's cache counters into the
    // engine-lifetime stats.
    let mut last: Option<Arc<PublishedModel>> = None;
    while let Some((batch, depth)) = shared.queue.next_batch(&shared.policy) {
        let snapshot = shared.registry.current();
        if let Some(prev) = &last {
            if prev.version != snapshot.version {
                let retired = prev.cache.stats();
                shared.stats.record_cache(retired.hits, retired.misses);
            }
        }
        last = Some(Arc::clone(&snapshot));
        shared.stats.record_batch(batch.len(), depth);
        let batch_ref = &batch;
        let snapshot_ref = &snapshot;
        let stats_ref = &shared.stats;
        dp_pool::parallel_for(batch.len(), &|i| {
            let pending = &batch_ref[i];
            let result = match validate(&pending.req, snapshot_ref) {
                Err(e) => Err(e),
                Ok(()) => {
                    let model = &snapshot_ref.model;
                    let pass = model.forward_keyed(&snapshot_ref.cache, &pending.req.frame);
                    let forces = pending.req.want_forces.then(|| model.forces(&pass));
                    Ok(InferResponse {
                        energy: pass.energy,
                        forces,
                        version: snapshot_ref.version,
                    })
                }
            };
            stats_ref.record_request(pending.submitted.elapsed().as_nanos() as u64);
            pending.fulfill(result);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{demo_frame as frame, demo_model as model};
    use std::time::Duration;

    fn engine(seed: u64) -> Arc<Engine> {
        let registry = Arc::new(ModelRegistry::new(model(seed)));
        Engine::start(registry, BatchPolicy::default())
    }

    #[test]
    fn served_response_matches_direct_prediction_bitwise() {
        let e = engine(5);
        let f = frame(9);
        let direct = e.registry().current().model.predict(&f);
        let resp = e.infer(f, true).unwrap();
        assert_eq!(resp.energy.to_bits(), direct.energy.to_bits());
        let forces = resp.forces.unwrap();
        assert_eq!(forces.len(), direct.forces.len());
        for (a, b) in forces.iter().zip(&direct.forces) {
            assert_eq!(a.0.map(f64::to_bits), b.0.map(f64::to_bits));
        }
        assert_eq!(resp.version, 1);
        e.shutdown();
    }

    #[test]
    fn energy_only_requests_skip_forces() {
        let e = engine(6);
        let resp = e.infer(frame(3), false).unwrap();
        assert!(resp.energy.is_finite());
        assert!(resp.forces.is_none());
        e.shutdown();
    }

    #[test]
    fn repeated_geometry_hits_the_snapshot_cache() {
        let e = engine(7);
        let f = frame(11);
        let _ = e.infer(f.clone(), false).unwrap();
        let _ = e.infer(f, false).unwrap();
        let stats = e.stats();
        assert!(
            stats.cache_hit_rate > 0.0,
            "second identical geometry must hit: {stats:?}"
        );
        e.shutdown();
    }

    #[test]
    fn malformed_frames_get_a_typed_error_not_a_dead_dispatcher() {
        let e = engine(8);
        let mut bad = frame(2);
        bad.types[0] = 9; // out of range for a 1-species model
        let err = e.infer(bad, false).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "got {err}");
        // The dispatcher survived and keeps serving.
        assert!(e.infer(frame(4), false).unwrap().energy.is_finite());
        e.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_requests_and_rejects_new_ones() {
        let registry = Arc::new(ModelRegistry::new(model(9)));
        let e = Engine::start(
            registry,
            BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(50),
            },
        );
        let tickets: Vec<_> = (0..6)
            .map(|i| {
                e.submit(InferRequest {
                    frame: frame(20 + i),
                    want_forces: false,
                })
                .unwrap()
            })
            .collect();
        e.shutdown();
        for t in tickets {
            assert!(t.wait().unwrap().energy.is_finite(), "accepted request must be served");
        }
        assert_eq!(
            e.infer(frame(1), false).unwrap_err(),
            ServeError::Closed,
            "post-shutdown submissions are refused"
        );
    }

    #[test]
    fn stats_count_requests_and_batches() {
        let e = engine(10);
        for i in 0..8 {
            let _ = e.infer(frame(30 + i), i % 2 == 0).unwrap();
        }
        let s = e.stats();
        assert_eq!(s.requests, 8);
        assert!(s.batches >= 1 && s.batches <= 8);
        assert!(s.latency_p50_ns.unwrap() > 0.0);
        assert!(s.latency_p99_ns.unwrap() >= s.latency_p50_ns.unwrap());
        e.shutdown();
    }

    #[test]
    fn hot_swap_changes_the_serving_version_between_requests() {
        let e = engine(11);
        let f = frame(40);
        let r1 = e.infer(f.clone(), false).unwrap();
        assert_eq!(r1.version, 1);
        e.registry().publish(model(12)).unwrap();
        let r2 = e.infer(f, false).unwrap();
        assert_eq!(r2.version, 2);
        assert_eq!(e.stats().swaps, 1);
        e.shutdown();
    }
}
