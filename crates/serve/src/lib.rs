//! # dp-serve — batched inference with hot-swappable models
//!
//! The paper trains a DeePMD model in minutes "as a step towards
//! online learning"; this crate is the other half of that loop: the
//! freshly trained potential must *serve* energy/force queries to
//! running MD drivers while the next retrain is already under way.
//!
//! Three pieces:
//!
//! * [`ModelRegistry`] — published model snapshots behind an atomic
//!   pointer. `publish` validates and swaps in one store; `current` is
//!   a lock-free read. In-flight requests finish on the snapshot they
//!   started with, so a swap is never observed mid-request.
//! * [`BatchQueue`] / [`Engine`] — clients submit [`InferRequest`]s
//!   from any thread; a dispatcher coalesces them into micro-batches
//!   (size-or-deadline policy) and fans each batch across `dp-pool`,
//!   reusing the snapshot's geometry cache so repeated configurations
//!   skip the environment build. Batched results are bitwise identical
//!   to sequential single-frame calls at any thread count.
//! * [`ServeStats`] — queue depth, batch-size and latency histograms
//!   (log2 fixed buckets, allocation-free record path), swap count and
//!   cache hit rate, exportable through `dp_bench::report`.
//!
//! ```no_run
//! use dp_serve::{BatchPolicy, Engine, ModelRegistry};
//! use std::sync::Arc;
//! # fn get_model() -> deepmd_core::model::DeepPotModel { unimplemented!() }
//! # fn get_frame() -> dp_data::dataset::Snapshot { unimplemented!() }
//!
//! let registry = Arc::new(ModelRegistry::new(get_model()));
//! let engine = Engine::start(Arc::clone(&registry), BatchPolicy::default());
//! let response = engine.infer(get_frame(), true).unwrap();
//! // ... meanwhile, a training thread hot-swaps the model:
//! registry.publish(get_model()).unwrap();
//! ```

pub mod batch;
pub mod chaos;
pub mod demo;
pub mod engine;
pub mod registry;
pub mod shard;
pub mod slo;
pub mod stats;
pub mod tenant;
pub mod wire;

pub use batch::{
    BatchPolicy, BatchQueue, Drained, Fidelity, InferRequest, InferResponse, Pending, ServeError,
    Ticket,
};
pub use chaos::ChaosPlan;
pub use engine::Engine;
pub use registry::{ModelRegistry, ModelTable, PublishedModel};
pub use shard::{Fleet, FleetConfig, ShardSet};
pub use slo::{infer_with_retry, Priority, RetryBudget, RetryPolicy, SloPolicy};
pub use stats::{ServeStats, StatsSnapshot};
pub use tenant::{TenantStats, TenantTable};
