//! Small self-contained serving fixtures: a one-species Al model and
//! jittered fcc frames, cheap enough for CI smoke runs (no MD
//! labelling, no training). Shared by the serve binaries, the
//! integration tests and the examples so they all exercise the same
//! geometry.

use deepmd_core::config::ModelConfig;
use deepmd_core::model::DeepPotModel;
use dp_data::dataset::{Dataset, Snapshot};
use dp_mdsim::lattice::{fcc, Species};
use dp_mdsim::Vec3;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A 32-atom fcc aluminium frame with seed-deterministic jitter.
pub fn demo_frame(seed: u64) -> Snapshot {
    let mut s = fcc(Species::new("Al", 27.0), 4.05, [2, 2, 2]);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    s.jitter_positions(0.1, &mut rng);
    Snapshot {
        cell: s.cell.lengths(),
        types: s.types.clone(),
        type_names: s.type_names.clone(),
        pos: s.pos.clone(),
        energy: -3.0,
        forces: vec![Vec3::ZERO; s.n_atoms()],
        temperature: 300.0,
    }
}

/// A small untrained (but statistically initialized) Al model whose
/// weights — and therefore served energies — depend on `seed`, so two
/// seeds make two distinguishable published versions.
pub fn demo_model(seed: u64) -> DeepPotModel {
    let mut cfg = ModelConfig::small(1, 3.4);
    cfg.rcut_smooth = 2.0;
    cfg.seed = seed;
    let mut ds = Dataset::new("Al", vec!["Al".into()]);
    ds.push(demo_frame(1));
    ds.push(demo_frame(2));
    DeepPotModel::new(cfg, &ds)
}

/// A 108-atom 3×3×3 fcc aluminium frame — big enough to legally carry
/// the production 6 Å cutoff (`rcut ≤ L/2`), used by the paper-sized
/// fixtures below.
pub fn demo_frame_paper(seed: u64) -> Snapshot {
    let mut s = fcc(Species::new("Al", 27.0), 4.05, [3, 3, 3]);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    s.jitter_positions(0.1, &mut rng);
    Snapshot {
        cell: s.cell.lengths(),
        types: s.types.clone(),
        type_names: s.type_names.clone(),
        pos: s.pos.clone(),
        energy: -3.0,
        forces: vec![Vec3::ZERO; s.n_atoms()],
        temperature: 300.0,
    }
}

/// [`demo_model`] at the paper's production scale: M = 25 with three
/// 25-wide embedding layers, three 50-wide fitting layers, and a 6 Å
/// cutoff (≈54 neighbors per atom on fcc Al). This is the regime where
/// the per-neighbor embedding net dominates serving cost, i.e. where
/// the compressed/quantized tiers earn their keep — the fidelity-sweep
/// bench pairs it with [`demo_frame_paper`] so the measured speedups
/// reflect production shapes, not the tiny CI fixture.
pub fn demo_model_paper(seed: u64) -> DeepPotModel {
    let mut cfg = ModelConfig::paper(1, 6.0);
    cfg.rcut_smooth = 5.0;
    cfg.seed = seed;
    let mut ds = Dataset::new("Al", vec!["Al".into()]);
    ds.push(demo_frame_paper(1));
    ds.push(demo_frame_paper(2));
    DeepPotModel::new(cfg, &ds)
}
