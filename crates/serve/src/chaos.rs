//! Deterministic chaos injection for the serving + online-learning
//! loop, modeled on `dp_parallel::FaultPlan` (DESIGN §7): every
//! decision is a pure function of `(seed, index, kind)`, so a failing
//! soak replays bit-for-bit from its printed seed.
//!
//! Four fault classes, matching where a real serving deployment
//! breaks:
//!
//! * **dispatcher stalls** — the engine sleeps before dispatching a
//!   batch (GC pause / noisy neighbor / page fault on the hot path);
//!   queues must absorb the burst without growing past capacity.
//! * **poisoned requests** — a request whose evaluation fails
//!   ([`crate::ServeError::EvalFailed`]); repeated ones exercise the
//!   circuit breaker.
//! * **slow clients** — a client that sleeps mid-schedule (the
//!   open-loop soak uses this; the engine must not care).
//! * **corrupted / poisoned publishes** — a publish whose bytes are
//!   corrupted (must be rejected by `model_io` validation, registry
//!   stays on the last-good version) or whose weights are non-finite
//!   (passes config validation, then fails evaluation — the breaker's
//!   job).
//!
//! Production code passes [`ChaosPlan::none`]; the soak harness and
//! tests dial probabilities up.

use std::time::Duration;

/// Seeded description of the faults to inject into a serving run.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPlan {
    /// Seed for all probabilistic decisions.
    pub seed: u64,
    /// Probability the dispatcher stalls before dispatching a batch.
    pub stall_prob: f64,
    /// Length of one dispatcher stall.
    pub stall: Duration,
    /// Probability a given request is poisoned (its evaluation fails
    /// with a typed error instead of producing numbers).
    pub poison_prob: f64,
    /// Probability a client pauses before one of its submissions.
    pub slow_client_prob: f64,
    /// Length of one client pause.
    pub slow_client: Duration,
    /// Probability a publish's serialized bytes are corrupted (one
    /// flipped bit — `model_io`'s CRC must reject it).
    pub corrupt_publish_prob: f64,
    /// Probability a publish carries non-finite weights (passes config
    /// validation, fails evaluation — trips the breaker).
    pub poison_publish_prob: f64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan::none()
    }
}

/// SplitMix64 finalizer — same mixer as `dp_parallel::fault`.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosPlan {
    /// No chaos.
    pub fn none() -> Self {
        ChaosPlan {
            seed: 0,
            stall_prob: 0.0,
            stall: Duration::ZERO,
            poison_prob: 0.0,
            slow_client_prob: 0.0,
            slow_client: Duration::ZERO,
            corrupt_publish_prob: 0.0,
            poison_publish_prob: 0.0,
        }
    }

    /// Whether this plan injects anything at all.
    pub fn is_none(&self) -> bool {
        self.stall_prob == 0.0
            && self.poison_prob == 0.0
            && self.slow_client_prob == 0.0
            && self.corrupt_publish_prob == 0.0
            && self.poison_publish_prob == 0.0
    }

    /// Uniform draw in `[0, 1)` keyed by the decision coordinates.
    fn roll(&self, index: u64, kind: u64) -> f64 {
        let key = self
            .seed
            .wrapping_mul(0x517C_C1B7_2722_0A95)
            .wrapping_add(index << 8)
            .wrapping_add(kind);
        (splitmix(key) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should the dispatcher stall before batch `batch_idx`?
    pub fn stalls(&self, batch_idx: u64) -> bool {
        self.stall_prob > 0.0 && self.roll(batch_idx, 1) < self.stall_prob
    }

    /// Is the `req_idx`-th dispatched request poisoned?
    pub fn poisons(&self, req_idx: u64) -> bool {
        self.poison_prob > 0.0 && self.roll(req_idx, 2) < self.poison_prob
    }

    /// Pause for client `client` before its `i`-th submission, if any.
    pub fn client_pause(&self, client: u64, i: u64) -> Option<Duration> {
        (self.slow_client_prob > 0.0
            && self.roll(client.wrapping_mul(0x1_0001).wrapping_add(i), 3) < self.slow_client_prob)
            .then_some(self.slow_client)
    }

    /// Should publish number `stage` have its bytes corrupted?
    pub fn corrupts_publish(&self, stage: u64) -> bool {
        self.corrupt_publish_prob > 0.0 && self.roll(stage, 4) < self.corrupt_publish_prob
    }

    /// Should publish number `stage` carry poisoned (non-finite)
    /// weights instead?
    pub fn poisons_publish(&self, stage: u64) -> bool {
        self.poison_publish_prob > 0.0 && self.roll(stage, 5) < self.poison_publish_prob
    }

    /// Deterministically flip one bit of a serialized model, keyed by
    /// `stage` — past the header so the corruption lands in the payload
    /// the CRC covers.
    pub fn corrupt_bytes(&self, bytes: &mut [u8], stage: u64) {
        if bytes.is_empty() {
            return;
        }
        let lo = bytes.len() / 4;
        let span = (bytes.len() - lo).max(1);
        let at = lo + (splitmix(self.seed ^ (stage << 17) ^ 0xC0DE) as usize) % span;
        bytes[at.min(bytes.len() - 1)] ^= 1 << (splitmix(self.seed ^ stage) % 8) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let p = ChaosPlan {
            seed: 42,
            stall_prob: 0.3,
            poison_prob: 0.3,
            slow_client_prob: 0.3,
            corrupt_publish_prob: 0.5,
            poison_publish_prob: 0.5,
            ..ChaosPlan::none()
        };
        for i in 0..64 {
            assert_eq!(p.stalls(i), p.stalls(i));
            assert_eq!(p.poisons(i), p.poisons(i));
            assert_eq!(p.client_pause(3, i), p.client_pause(3, i));
            assert_eq!(p.corrupts_publish(i), p.corrupts_publish(i));
            assert_eq!(p.poisons_publish(i), p.poisons_publish(i));
        }
    }

    #[test]
    fn rates_track_probabilities() {
        let p = ChaosPlan { seed: 7, poison_prob: 0.25, ..ChaosPlan::none() };
        let trials = 4000;
        let hits = (0..trials).filter(|&i| p.poisons(i)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.05, "observed poison rate {rate}");
    }

    #[test]
    fn none_injects_nothing() {
        let p = ChaosPlan::none();
        assert!(p.is_none());
        assert!(!p.stalls(0));
        assert!(!p.poisons(9));
        assert!(p.client_pause(0, 0).is_none());
        assert!(!p.corrupts_publish(1));
        assert!(!p.poisons_publish(1));
    }

    #[test]
    fn corrupt_bytes_flips_exactly_one_bit_deterministically() {
        let p = ChaosPlan { seed: 99, corrupt_publish_prob: 1.0, ..ChaosPlan::none() };
        let clean: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();
        let mut a = clean.clone();
        let mut b = clean.clone();
        p.corrupt_bytes(&mut a, 5);
        p.corrupt_bytes(&mut b, 5);
        assert_eq!(a, b, "same stage corrupts the same bit");
        let flipped: u32 = clean
            .iter()
            .zip(&a)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
        let mut c = clean.clone();
        p.corrupt_bytes(&mut c, 6);
        assert!(c != a || a == clean, "different stages may corrupt differently");
    }
}
