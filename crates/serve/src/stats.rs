//! Serving telemetry: queue depth, batch sizes, latency percentiles,
//! swap count, geometry-cache hit rate, and the SLO counters (shed,
//! deadline misses, breaker trips, degraded responses, per-lane
//! depth).
//!
//! Every counter on the request path is an atomic or a fixed-bucket
//! [`Histogram`] (`dp_bench::report`) — no lock, no allocation — so
//! the stats layer cannot perturb the latencies it measures. Snapshots
//! ([`ServeStats::snapshot`]) are taken off-path and exported through
//! `dp_bench::report::BenchReport` by the `bench_serve` and
//! `overload_soak` binaries.

use dp_bench::report::{BenchReport, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters and histograms updated by the engine.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests completed (with a response or a dispatch-side typed
    /// error; admission-time rejections count under `shed` only).
    pub requests: AtomicU64,
    /// Micro-batches dispatched.
    pub batches: AtomicU64,
    /// Per-request latency from submission to response, nanoseconds
    /// (log2 buckets).
    pub latency_ns: Histogram,
    /// Dispatched batch sizes (log2 buckets).
    pub batch_sizes: Histogram,
    /// Queue depth observed at each dispatch (log2 buckets).
    pub queue_depth: Histogram,
    /// Interactive-lane depth at each dispatch (log2 buckets).
    pub interactive_depth: Histogram,
    /// Bulk-lane depth at each dispatch (log2 buckets).
    pub bulk_depth: Histogram,
    /// Largest queue depth ever observed at a dispatch.
    pub max_depth: AtomicU64,
    /// Overload sheds: submissions rejected at capacity plus queued
    /// bulk requests evicted for interactive arrivals.
    pub shed: AtomicU64,
    /// Requests shed by the dispatcher because their deadline was (or
    /// provably would be) exceeded.
    pub deadline_miss: AtomicU64,
    /// Circuit-breaker trips (transitions into the open state).
    pub breaker_trips: AtomicU64,
    /// Responses served energy-only under degradation although forces
    /// were requested.
    pub degraded: AtomicU64,
    /// Model-eval failures (poisoned requests, non-finite output).
    pub eval_failures: AtomicU64,
    /// Environment-cache hits across all snapshots served.
    pub cache_hits: AtomicU64,
    /// Environment-cache misses across all snapshots served.
    pub cache_misses: AtomicU64,
}

/// A point-in-time, plain-value view of [`ServeStats`].
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Requests completed.
    pub requests: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Latency percentiles in nanoseconds (`None` before any request).
    pub latency_p50_ns: Option<f64>,
    /// 90th percentile latency.
    pub latency_p90_ns: Option<f64>,
    /// 99th percentile latency.
    pub latency_p99_ns: Option<f64>,
    /// 99.9th percentile latency.
    pub latency_p999_ns: Option<f64>,
    /// Model swaps observed by the engine (publishes after the first).
    pub swaps: u64,
    /// Geometry-cache hit rate over everything served, 0 when unused.
    pub cache_hit_rate: f64,
    /// Overload sheds (capacity rejections + bulk evictions).
    pub shed: u64,
    /// Dispatcher-side deadline sheds.
    pub deadline_miss: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Energy-only degraded responses.
    pub degraded: u64,
    /// Model-eval failures.
    pub eval_failures: u64,
    /// Largest queue depth observed at any dispatch.
    pub max_depth: u64,
}

impl ServeStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        ServeStats::default()
    }

    /// Record one dispatched batch of `size` requests drained from a
    /// queue holding `depth` pending requests (`interactive` + `bulk`).
    pub fn record_batch(&self, size: usize, depth: usize, interactive: usize, bulk: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_sizes.record(size as u64);
        self.queue_depth.record(depth as u64);
        self.interactive_depth.record(interactive as u64);
        self.bulk_depth.record(bulk as u64);
        self.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Record one completed request with its submission-to-response
    /// latency.
    pub fn record_request(&self, latency_ns: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latency_ns.record(latency_ns);
    }

    /// Record one overload shed (capacity rejection or bulk eviction).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one dispatcher-side deadline shed.
    pub fn record_deadline_miss(&self) {
        self.deadline_miss.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one circuit-breaker trip.
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one degraded (energy-only) response.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one model-eval failure.
    pub fn record_eval_failure(&self) {
        self.eval_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one snapshot's cache counters in (called when a snapshot
    /// is retired or at snapshot time with the live counters).
    pub fn record_cache(&self, hits: u64, misses: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Point-in-time view. `swaps` comes from the registry (the engine
    /// passes it through).
    pub fn snapshot(&self, swaps: u64) -> StatsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        StatsSnapshot {
            requests,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            latency_p50_ns: self.latency_ns.p50(),
            latency_p90_ns: self.latency_ns.p90(),
            latency_p99_ns: self.latency_ns.p99(),
            latency_p999_ns: self.latency_ns.p999(),
            swaps,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            shed: self.shed.load(Ordering::Relaxed),
            deadline_miss: self.deadline_miss.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            eval_failures: self.eval_failures.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
        }
    }

    /// Append the snapshot to a [`BenchReport`] under `name`, with the
    /// shape column carrying the configured max batch size.
    pub fn report_into(&self, report: &mut BenchReport, name: &str, max_batch: usize, threads: usize, swaps: u64) {
        let snap = self.snapshot(swaps);
        let mut push = |metric: &str, value: f64| {
            report.push(
                &format!("{name}_{metric}"),
                &[max_batch],
                threads,
                value,
                snap.requests as usize,
            );
        };
        push("p50_ns", snap.latency_p50_ns.unwrap_or(0.0));
        push("p90_ns", snap.latency_p90_ns.unwrap_or(0.0));
        push("p99_ns", snap.latency_p99_ns.unwrap_or(0.0));
        push("p999_ns", snap.latency_p999_ns.unwrap_or(0.0));
        push("mean_batch", snap.mean_batch);
        push("cache_hit_rate", snap.cache_hit_rate);
        push("shed", snap.shed as f64);
        push("deadline_miss", snap.deadline_miss as f64);
        push("breaker_trips", snap.breaker_trips as f64);
        push("degraded", snap.degraded as f64);
        push("max_depth", snap.max_depth as f64);
        push(
            "interactive_depth_p50",
            self.interactive_depth.p50().unwrap_or(0.0),
        );
        push("bulk_depth_p50", self.bulk_depth.p50().unwrap_or(0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_summarizes_counters() {
        let s = ServeStats::new();
        for i in 0..100u64 {
            s.record_request(1_000 + i);
        }
        s.record_request(1_000_000);
        s.record_batch(8, 12, 9, 3);
        s.record_batch(4, 4, 4, 0);
        s.record_cache(30, 10);
        s.record_shed();
        s.record_shed();
        s.record_deadline_miss();
        s.record_breaker_trip();
        s.record_degraded();
        s.record_eval_failure();
        let snap = s.snapshot(3);
        assert_eq!(snap.requests, 101);
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch - 50.5).abs() < 1e-12);
        assert!(snap.latency_p50_ns.unwrap() < 4096.0);
        assert!(snap.latency_p99_ns.unwrap() >= snap.latency_p50_ns.unwrap());
        assert!(snap.latency_p999_ns.unwrap() >= snap.latency_p99_ns.unwrap());
        assert_eq!(snap.swaps, 3);
        assert!((snap.cache_hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.deadline_miss, 1);
        assert_eq!(snap.breaker_trips, 1);
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.eval_failures, 1);
        assert_eq!(snap.max_depth, 12);
    }

    #[test]
    fn empty_stats_have_no_percentiles() {
        let s = ServeStats::new();
        let snap = s.snapshot(0);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.latency_p50_ns, None);
        assert_eq!(snap.latency_p999_ns, None);
        assert_eq!(snap.mean_batch, 0.0);
        assert_eq!(snap.cache_hit_rate, 0.0);
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.max_depth, 0);
    }

    #[test]
    fn report_rows_carry_the_batch_shape() {
        let s = ServeStats::new();
        s.record_request(512);
        let mut r = BenchReport::new("serve");
        s.report_into(&mut r, "serve", 8, 4, 1);
        assert!(r.find("serve_p50_ns", &[8], 4).is_some());
        assert!(r.find("serve_p999_ns", &[8], 4).is_some());
        assert!(r.find("serve_cache_hit_rate", &[8], 4).is_some());
        assert!(r.find("serve_shed", &[8], 4).is_some());
        assert!(r.find("serve_deadline_miss", &[8], 4).is_some());
        assert!(r.find("serve_breaker_trips", &[8], 4).is_some());
        assert!(r.find("serve_degraded", &[8], 4).is_some());
        assert!(r.find("serve_max_depth", &[8], 4).is_some());
        assert!(r.find("serve_interactive_depth_p50", &[8], 4).is_some());
        assert!(r.find("serve_bulk_depth_p50", &[8], 4).is_some());
    }
}
