//! Serving telemetry: queue depth, batch sizes, latency percentiles,
//! swap count and geometry-cache hit rate.
//!
//! Every counter on the request path is an atomic or a fixed-bucket
//! [`Histogram`] (`dp_bench::report`) — no lock, no allocation — so
//! the stats layer cannot perturb the latencies it measures. Snapshots
//! ([`ServeStats::snapshot`]) are taken off-path and exported through
//! `dp_bench::report::BenchReport` by the `bench_serve` binary.

use dp_bench::report::{BenchReport, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters and histograms updated by the engine.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests completed.
    pub requests: AtomicU64,
    /// Micro-batches dispatched.
    pub batches: AtomicU64,
    /// Per-request latency from submission to response, nanoseconds
    /// (log2 buckets).
    pub latency_ns: Histogram,
    /// Dispatched batch sizes (log2 buckets).
    pub batch_sizes: Histogram,
    /// Queue depth observed at each dispatch (log2 buckets).
    pub queue_depth: Histogram,
    /// Environment-cache hits across all snapshots served.
    pub cache_hits: AtomicU64,
    /// Environment-cache misses across all snapshots served.
    pub cache_misses: AtomicU64,
}

/// A point-in-time, plain-value view of [`ServeStats`].
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Requests completed.
    pub requests: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Latency percentiles in nanoseconds (`None` before any request).
    pub latency_p50_ns: Option<f64>,
    /// 90th percentile latency.
    pub latency_p90_ns: Option<f64>,
    /// 99th percentile latency.
    pub latency_p99_ns: Option<f64>,
    /// Model swaps observed by the engine (publishes after the first).
    pub swaps: u64,
    /// Geometry-cache hit rate over everything served, 0 when unused.
    pub cache_hit_rate: f64,
}

impl ServeStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        ServeStats::default()
    }

    /// Record one dispatched batch of `size` requests drained from a
    /// queue that held `depth` pending requests.
    pub fn record_batch(&self, size: usize, depth: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_sizes.record(size as u64);
        self.queue_depth.record(depth as u64);
    }

    /// Record one completed request with its submission-to-response
    /// latency.
    pub fn record_request(&self, latency_ns: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latency_ns.record(latency_ns);
    }

    /// Fold one snapshot's cache counters in (called when a snapshot
    /// is retired or at snapshot time with the live counters).
    pub fn record_cache(&self, hits: u64, misses: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Point-in-time view. `swaps` comes from the registry (the engine
    /// passes it through).
    pub fn snapshot(&self, swaps: u64) -> StatsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        StatsSnapshot {
            requests,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            latency_p50_ns: self.latency_ns.p50(),
            latency_p90_ns: self.latency_ns.p90(),
            latency_p99_ns: self.latency_ns.p99(),
            swaps,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
        }
    }

    /// Append the snapshot to a [`BenchReport`] under `name`, with the
    /// shape column carrying the configured max batch size.
    pub fn report_into(&self, report: &mut BenchReport, name: &str, max_batch: usize, threads: usize, swaps: u64) {
        let snap = self.snapshot(swaps);
        let mut push = |metric: &str, value: f64| {
            report.push(
                &format!("{name}_{metric}"),
                &[max_batch],
                threads,
                value,
                snap.requests as usize,
            );
        };
        push("p50_ns", snap.latency_p50_ns.unwrap_or(0.0));
        push("p90_ns", snap.latency_p90_ns.unwrap_or(0.0));
        push("p99_ns", snap.latency_p99_ns.unwrap_or(0.0));
        push("mean_batch", snap.mean_batch);
        push("cache_hit_rate", snap.cache_hit_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_summarizes_counters() {
        let s = ServeStats::new();
        for i in 0..100u64 {
            s.record_request(1_000 + i);
        }
        s.record_request(1_000_000);
        s.record_batch(8, 12);
        s.record_batch(4, 4);
        s.record_cache(30, 10);
        let snap = s.snapshot(3);
        assert_eq!(snap.requests, 101);
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch - 50.5).abs() < 1e-12);
        assert!(snap.latency_p50_ns.unwrap() < 4096.0);
        assert!(snap.latency_p99_ns.unwrap() >= snap.latency_p50_ns.unwrap());
        assert_eq!(snap.swaps, 3);
        assert!((snap.cache_hit_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_no_percentiles() {
        let s = ServeStats::new();
        let snap = s.snapshot(0);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.latency_p50_ns, None);
        assert_eq!(snap.mean_batch, 0.0);
        assert_eq!(snap.cache_hit_rate, 0.0);
    }

    #[test]
    fn report_rows_carry_the_batch_shape() {
        let s = ServeStats::new();
        s.record_request(512);
        let mut r = BenchReport::new("serve");
        s.report_into(&mut r, "serve", 8, 4, 1);
        assert!(r.find("serve_p50_ns", &[8], 4).is_some());
        assert!(r.find("serve_cache_hit_rate", &[8], 4).is_some());
    }
}
