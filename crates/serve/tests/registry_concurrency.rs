//! Regression tests for the `ModelRegistry::prune` footgun: pruning
//! drops retired snapshots while readers may still be asking for them
//! by version. The contract is that a pruned version comes back as a
//! typed [`ServeError::SnapshotPruned`] (via `snapshot_checked`) — a
//! `None`, never a stale `Arc`, never a torn read — and that `current`
//! stays lock-free-valid while publishers and a pruner race it.
//!
//! `prune` takes `&mut self`, so concurrent use goes through
//! `RwLock<ModelRegistry>`: readers (serving shards calling `current`
//! / `publish` / `snapshot_at`) share the read lock, the pruner takes
//! the write lock. This test is the documented pattern, exercised hot.

use deepmd_core::model_io;
use dp_serve::demo::demo_model;
use dp_serve::{ModelRegistry, ServeError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread;

#[test]
fn pruned_snapshot_is_a_typed_error_not_a_stale_arc() {
    let registry = ModelRegistry::new(demo_model(1));
    let mut registry = registry;
    for seed in 2..=4 {
        registry.publish(demo_model(seed)).unwrap();
    }
    assert_eq!(registry.current_version(), 4);

    // Versions 1–3 exist before the prune…
    for v in 1..=4 {
        assert!(registry.snapshot_at(v).is_some(), "version {v} should pre-exist");
    }
    registry.prune(1);

    // …and afterwards only the head survives; the rest are typed.
    assert_eq!(registry.snapshot_at(4).unwrap().version, 4);
    for v in 1..=3 {
        assert!(registry.snapshot_at(v).is_none(), "version {v} must be gone");
        match registry.snapshot_checked(v) {
            Err(ServeError::SnapshotPruned { version, current }) => {
                assert_eq!((version, current), (v, 4));
            }
            other => panic!("version {v}: expected SnapshotPruned, got {other:?}"),
        }
    }
    // A version that never existed reports the same typed miss.
    match registry.snapshot_checked(99) {
        Err(ServeError::SnapshotPruned { version: 99, current: 4 }) => {}
        other => panic!("expected SnapshotPruned for v99, got {other:?}"),
    }
}

#[test]
fn concurrent_publish_prune_and_current_never_tear() {
    // 2 publishers + 2 readers + 1 pruner over a RwLock'd registry.
    // Invariants checked hot, on every observation:
    //   * `current()` always returns a model whose version is
    //     monotonically non-decreasing per observer;
    //   * `snapshot_at(current_version)` from a read-lock holder is
    //     never None (prune always keeps the head);
    //   * a denied `snapshot_checked` is always the typed error.
    let registry = Arc::new(RwLock::new(ModelRegistry::new(demo_model(10))));
    let stop = Arc::new(AtomicBool::new(false));
    let publishes = Arc::new(AtomicU64::new(0));
    let blob = model_io::to_bytes(&demo_model(11));

    let mut handles = Vec::new();
    for p in 0..2u64 {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        let publishes = Arc::clone(&publishes);
        let blob = blob.clone();
        handles.push(thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let guard = registry.read().unwrap();
                if p == 0 {
                    guard.publish(demo_model(100 + n)).unwrap();
                } else {
                    guard.publish_bytes(&blob).unwrap();
                }
                drop(guard);
                publishes.fetch_add(1, Ordering::Relaxed);
                n += 1;
                if n >= 200 {
                    break;
                }
            }
        }));
    }
    for _ in 0..2 {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            let mut last_seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let guard = registry.read().unwrap();
                let cur = guard.current();
                assert!(
                    cur.version >= last_seen,
                    "current went backwards: {} after {last_seen}",
                    cur.version
                );
                last_seen = cur.version;
                // Under the same read lock the head cannot be pruned
                // out from underneath us.
                assert!(
                    guard.snapshot_at(cur.version).is_some(),
                    "head version {} pruned while a reader held it",
                    cur.version
                );
                // Version 0 never existed; the miss is always typed.
                match guard.snapshot_checked(0) {
                    Err(ServeError::SnapshotPruned { version: 0, .. }) => {}
                    other => panic!("expected typed miss for v0, got {other:?}"),
                }
                // The model itself is usable (the Arc is alive).
                assert!(cur.model.n_params() > 0);
            }
        }));
    }
    {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let mut guard = registry.write().unwrap();
                guard.prune(2);
                drop(guard);
                thread::yield_now();
            }
        }));
    }

    while publishes.load(Ordering::Relaxed) < 400 {
        thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("no participant may panic");
    }

    // Endgame: prune to one and check the typed-miss story end to end.
    let mut registry = Arc::try_unwrap(registry)
        .unwrap_or_else(|_| panic!("all clones joined"))
        .into_inner()
        .unwrap();
    registry.prune(1);
    let head = registry.current_version();
    assert!(head >= 401, "2 publishers x >=200 publishes + seed, got {head}");
    assert!(registry.snapshot_at(head).is_some());
    assert!(matches!(
        registry.snapshot_checked(head - 1),
        Err(ServeError::SnapshotPruned { .. })
    ));
}
