//! Regression for the shutdown-while-queued race: clients racing
//! submissions against `Engine::shutdown` must each end with exactly
//! one outcome — a served response or a typed error — never a hang.
//! The engine's contract is that shutdown *fulfills* queued requests
//! (the dispatcher drains them) rather than stranding their tickets.

use dp_serve::demo::{demo_frame, demo_model};
use dp_serve::{BatchPolicy, Engine, InferRequest, ModelRegistry, ServeError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 25;
/// Far above any plausible service time; reaching it means a ticket
/// was stranded, which is exactly the bug this test pins.
const HANG: Duration = Duration::from_secs(30);

#[test]
fn every_ticket_resolves_when_shutdown_races_submission() {
    for round in 0..3u64 {
        let registry = Arc::new(ModelRegistry::new(demo_model(round + 1)));
        let engine = Engine::start(
            registry,
            BatchPolicy { max_batch: 4, max_wait: Duration::from_millis(1) },
        );
        let served = Arc::new(AtomicU64::new(0));
        let closed = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(CLIENTS + 1));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                let served = Arc::clone(&served);
                let closed = Arc::clone(&closed);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..REQUESTS_PER_CLIENT {
                        let frame = demo_frame((c * REQUESTS_PER_CLIENT + i) as u64);
                        match engine.submit(InferRequest::new(frame, false)) {
                            Ok(t) => match t.wait_timeout(HANG) {
                                Some(Ok(_)) => {
                                    served.fetch_add(1, Ordering::Relaxed);
                                }
                                Some(Err(ServeError::Closed)) => {
                                    closed.fetch_add(1, Ordering::Relaxed);
                                }
                                Some(Err(e)) => panic!("unexpected error: {e}"),
                                None => panic!("ticket stranded by shutdown race"),
                            },
                            Err(ServeError::Closed) => {
                                closed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        // Shut down while the clients are mid-burst: some requests are
        // queued, some in flight, some not yet submitted.
        std::thread::sleep(Duration::from_millis(2));
        engine.shutdown();
        for c in clients {
            c.join().expect("client must finish, not hang");
        }
        let total = served.load(Ordering::Relaxed) + closed.load(Ordering::Relaxed);
        assert_eq!(
            total,
            (CLIENTS * REQUESTS_PER_CLIENT) as u64,
            "round {round}: every request must resolve exactly once"
        );
        // Shutdown is idempotent and post-shutdown submits are refused.
        engine.shutdown();
        assert_eq!(
            engine.infer(demo_frame(0), false).unwrap_err(),
            ServeError::Closed
        );
    }
}
