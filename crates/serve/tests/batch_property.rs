//! Property test for `BatchQueue` under concurrent submit / close /
//! drain, across seeded random schedules:
//!
//! 1. every *accepted* ticket is fulfilled exactly once (ok, evicted
//!    `Overloaded`, or `Closed` at teardown — one outcome, no hangs);
//! 2. a submission after `close` returns `ServeError::Closed`;
//! 3. the queue depth never exceeds the configured capacity, at any
//!    drain point, under any interleaving.
//!
//! The dispatcher here is a custom drain loop over the public
//! `next_batch` — the same driver the engine uses — so the properties
//! hold for any consumer of the queue, not just `Engine`.

use dp_serve::demo::demo_frame;
use dp_serve::{
    BatchPolicy, BatchQueue, Fidelity, InferRequest, InferResponse, ServeError, ServeStats,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const SUBMITTERS: usize = 4;
const REQUESTS_PER_SUBMITTER: usize = 40;
const CAPACITY: usize = 8;
const HANG: Duration = Duration::from_secs(30);

/// Tiny deterministic generator for the per-thread schedules.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn accepted_tickets_resolve_exactly_once_and_depth_is_bounded() {
    for seed in 0..4u64 {
        let stats = Arc::new(ServeStats::new());
        let q = Arc::new(BatchQueue::bounded(CAPACITY, Arc::clone(&stats)));
        let accepted = Arc::new(AtomicU64::new(0));
        let resolved_ok = Arc::new(AtomicU64::new(0));
        let resolved_overloaded = Arc::new(AtomicU64::new(0));
        let resolved_closed = Arc::new(AtomicU64::new(0));
        let rejected_overloaded = Arc::new(AtomicU64::new(0));
        let rejected_closed = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(SUBMITTERS + 2));

        // Custom dispatcher: drain batches, check the depth bound,
        // fulfill everything drained exactly once.
        let dispatcher = {
            let q = Arc::clone(&q);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let policy = BatchPolicy { max_batch: 3, max_wait: Duration::from_micros(200) };
                let mut max_depth_seen = 0usize;
                while let Some(d) = q.next_batch(&policy) {
                    assert!(
                        d.depth <= CAPACITY,
                        "depth {} exceeded capacity {CAPACITY}",
                        d.depth
                    );
                    assert_eq!(d.depth, d.interactive_depth + d.bulk_depth);
                    max_depth_seen = max_depth_seen.max(d.depth);
                    for p in &d.batch {
                        p.fulfill(Ok(InferResponse {
                            energy: -1.0,
                            forces: None,
                            version: 1,
                            degraded: false,
                            fidelity: Fidelity::Master,
                        }));
                    }
                }
                max_depth_seen
            })
        };

        let submitters: Vec<_> = (0..SUBMITTERS)
            .map(|s| {
                let q = Arc::clone(&q);
                let barrier = Arc::clone(&barrier);
                let accepted = Arc::clone(&accepted);
                let resolved_ok = Arc::clone(&resolved_ok);
                let resolved_overloaded = Arc::clone(&resolved_overloaded);
                let resolved_closed = Arc::clone(&resolved_closed);
                let rejected_overloaded = Arc::clone(&rejected_overloaded);
                let rejected_closed = Arc::clone(&rejected_closed);
                std::thread::spawn(move || {
                    let mut rng = seed.wrapping_mul(0x9E3779B97F4A7C15) ^ s as u64;
                    barrier.wait();
                    for i in 0..REQUESTS_PER_SUBMITTER {
                        let roll = splitmix(&mut rng);
                        let mut req = InferRequest::new(demo_frame(i as u64), false);
                        if roll.is_multiple_of(2) {
                            req = req.bulk();
                        }
                        match q.submit(req) {
                            Ok(t) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                                match t.wait_timeout(HANG) {
                                    Some(Ok(_)) => resolved_ok.fetch_add(1, Ordering::Relaxed),
                                    Some(Err(ServeError::Overloaded { .. })) => {
                                        resolved_overloaded.fetch_add(1, Ordering::Relaxed)
                                    }
                                    Some(Err(ServeError::Closed)) => {
                                        resolved_closed.fetch_add(1, Ordering::Relaxed)
                                    }
                                    Some(Err(e)) => panic!("unexpected outcome: {e}"),
                                    None => panic!("accepted ticket never resolved"),
                                };
                            }
                            Err(ServeError::Overloaded { depth, capacity }) => {
                                assert!(depth >= capacity, "rejection implies a full queue");
                                rejected_overloaded.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::Closed) => {
                                rejected_closed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                        if roll.is_multiple_of(7) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();

        // Closer: let the storm develop, then close mid-run.
        let closer = {
            let q = Arc::clone(&q);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                std::thread::sleep(Duration::from_millis(1 + seed));
                q.close();
                // Property 2: a post-close submission gets Closed, not
                // a hang and not a silent drop.
                assert_eq!(
                    q.submit(InferRequest::new(demo_frame(999), false)).unwrap_err(),
                    ServeError::Closed
                );
            })
        };

        for s in submitters {
            s.join().expect("submitter must finish");
        }
        closer.join().expect("closer must finish");
        let max_depth_seen = dispatcher.join().expect("dispatcher must finish");
        q.reject_remaining();

        // Property 1: accepted = resolved, one outcome each.
        let resolved = resolved_ok.load(Ordering::Relaxed)
            + resolved_overloaded.load(Ordering::Relaxed)
            + resolved_closed.load(Ordering::Relaxed);
        assert_eq!(
            accepted.load(Ordering::Relaxed),
            resolved,
            "seed {seed}: every accepted ticket resolves exactly once"
        );
        assert_eq!(
            accepted.load(Ordering::Relaxed)
                + rejected_overloaded.load(Ordering::Relaxed)
                + rejected_closed.load(Ordering::Relaxed),
            (SUBMITTERS * REQUESTS_PER_SUBMITTER) as u64,
            "seed {seed}: submissions are accepted or typed-rejected, nothing vanishes"
        );
        // Property 3 held at every drain; the queue is empty at the end.
        assert!(max_depth_seen <= CAPACITY);
        assert_eq!(q.depth(), 0, "seed {seed}: teardown leaves nothing queued");
        // Shed accounting: one shed per eviction (ticket resolved
        // Overloaded) plus one per capacity rejection; Closed
        // rejections are not sheds.
        assert_eq!(
            stats.shed.load(Ordering::Relaxed),
            resolved_overloaded.load(Ordering::Relaxed)
                + rejected_overloaded.load(Ordering::Relaxed),
            "seed {seed}: shed counter matches observed evictions + rejections"
        );
    }
}
