//! Differential test: a seeded request stream pushed through an
//! N-shard fleet — over the *wire*, via the loopback transport — must
//! produce bitwise identical numbers to a single engine serving the
//! same models, at every shard count and thread count. Routing,
//! framing, and fan-out are allowed to change *where* work runs,
//! never *what* it computes.

use dp_serve::demo::{demo_frame, demo_model};
use dp_serve::shard::{Fleet, FleetConfig};
use dp_serve::wire::{decode_infer_reply, encode_infer, Loopback};
use dp_serve::{
    BatchPolicy, Engine, InferRequest, ModelRegistry, ModelTable, ServeError,
};
use std::sync::Arc;

/// Deterministic stream generator (mirrors the verify-crate one).
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

const MODEL_IDS: [u64; 3] = [0, 7, 42];

fn table() -> Arc<ModelTable> {
    ModelTable::with_models(
        MODEL_IDS
            .iter()
            .map(|&id| (id, Arc::new(ModelRegistry::new(demo_model(id + 1))))),
    )
}

/// The seeded request stream: (model id, frame seed, want_forces).
fn stream(seed: u64, len: usize) -> Vec<(u64, u64, bool)> {
    let mut rng = XorShift64(seed);
    (0..len)
        .map(|_| {
            let model = MODEL_IDS[(rng.next() % 3) as usize];
            let frame_seed = rng.next() % 17;
            let forces = rng.next().is_multiple_of(2);
            (model, frame_seed, forces)
        })
        .collect()
}

#[test]
fn fleet_over_the_wire_is_bitwise_identical_to_a_single_engine() {
    let requests = stream(0x5eed_0001, 48);

    // Reference: one single-model engine per registry, no fleet, no
    // wire — the path the batching-determinism suite already pins to
    // sequential predict.
    let reference: Vec<_> = {
        let table = table();
        let engines: Vec<(u64, Arc<Engine>)> = MODEL_IDS
            .iter()
            .map(|&id| (id, Engine::start(table.get(id).unwrap(), BatchPolicy::default())))
            .collect();
        let out: Vec<_> = requests
            .iter()
            .map(|&(model, frame_seed, forces)| {
                let engine = &engines.iter().find(|(id, _)| *id == model).unwrap().1;
                engine.infer(demo_frame(frame_seed), forces).unwrap()
            })
            .collect();
        for (_, e) in engines {
            e.shutdown();
        }
        out
    };

    let saved_threads = dp_pool::current_threads();
    for shards in [1u32, 2, 5] {
        for threads in [1usize, 4] {
            dp_pool::set_threads(threads);
            let fleet = Fleet::start(FleetConfig::new(shards), table());
            let loopback = Loopback::new(&fleet);
            for (i, &(model, frame_seed, forces)) in requests.iter().enumerate() {
                let req = InferRequest::new(demo_frame(frame_seed), forces)
                    .for_model(model)
                    .from_tenant(1 + model % 2);
                let reply = loopback.call(&encode_infer(&req));
                let got = decode_infer_reply(&reply)
                    .expect("reply frame must decode")
                    .unwrap_or_else(|e| {
                        panic!("shards={shards} threads={threads} req {i}: {e}")
                    });
                let want = &reference[i];
                assert_eq!(
                    got.energy.to_bits(),
                    want.energy.to_bits(),
                    "shards={shards} threads={threads} req {i} (model {model}, \
                     frame {frame_seed}): energy diverged"
                );
                match (&got.forces, &want.forces) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.len(), b.len());
                        for (fa, fb) in a.iter().zip(b) {
                            assert_eq!(
                                fa.0.map(f64::to_bits),
                                fb.0.map(f64::to_bits),
                                "shards={shards} threads={threads} req {i}: force diverged"
                            );
                        }
                    }
                    other => panic!(
                        "shards={shards} threads={threads} req {i}: force presence \
                         mismatch {other:?}"
                    ),
                }
            }
            fleet.shutdown();
        }
    }
    dp_pool::set_threads(saved_threads);
}

#[test]
fn publish_mid_stream_keeps_fleet_and_single_engine_aligned() {
    // Hot-swap model 7 halfway through: both sides serve the stream
    // with an explicit barrier at the swap point, so versioning is
    // deterministic and the comparison stays bitwise.
    let requests = stream(0x5eed_0002, 24);
    let swap_at = requests.len() / 2;

    let run = |serve: &dyn Fn(&InferRequest) -> Result<dp_serve::InferResponse, ServeError>,
               publish: &dyn Fn()| {
        let mut out = Vec::new();
        for (i, &(model, frame_seed, forces)) in requests.iter().enumerate() {
            if i == swap_at {
                publish();
            }
            let req = InferRequest::new(demo_frame(frame_seed), forces).for_model(model);
            out.push(serve(&req).unwrap());
        }
        out
    };

    let single_table = table();
    let single_engines: Vec<(u64, Arc<Engine>)> = MODEL_IDS
        .iter()
        .map(|&id| (id, Engine::start(single_table.get(id).unwrap(), BatchPolicy::default())))
        .collect();
    let reference = run(
        &|req| {
            let engine = &single_engines.iter().find(|(id, _)| *id == req.model).unwrap().1;
            // A single-model engine's table holds its registry at id 0;
            // the routing id is the fleet's concern, not the model's.
            let mut local = req.clone();
            local.model = 0;
            engine.submit(local)?.wait()
        },
        &|| {
            single_table.get(7).unwrap().publish(demo_model(777)).unwrap();
        },
    );
    for (_, e) in single_engines {
        e.shutdown();
    }

    let fleet = Fleet::start(FleetConfig::new(3), table());
    let loopback = Loopback::new(&fleet);
    let got = run(
        &|req| decode_infer_reply(&loopback.call(&encode_infer(req))).unwrap(),
        &|| {
            fleet.models().get(7).unwrap().publish(demo_model(777)).unwrap();
        },
    );
    fleet.shutdown();

    for (i, (g, w)) in got.iter().zip(&reference).enumerate() {
        assert_eq!(g.energy.to_bits(), w.energy.to_bits(), "req {i}: energy diverged");
        assert_eq!(g.version, w.version, "req {i}: served version diverged");
    }
    // The swap actually happened on both sides: some later request hit v2.
    assert!(
        got.iter().skip(swap_at).any(|r| r.version == 2),
        "no post-swap request observed version 2"
    );
}

#[test]
fn killed_shard_fails_typed_while_survivors_serve() {
    let fleet = Fleet::start(FleetConfig::new(4), table());
    let loopback = Loopback::new(&fleet);
    // Find a model id per routing bucket so we can hit both the dead
    // shard and a live one.
    let victim_model = MODEL_IDS
        .iter()
        .copied()
        .find(|&m| fleet.route(m) != fleet.route(MODEL_IDS[0]))
        .unwrap_or(MODEL_IDS[1]);
    let victim_shard = fleet.route(victim_model);
    assert!(fleet.kill(victim_shard));

    // Traffic pinned to the dead shard: typed Closed over the wire.
    let req = InferRequest::new(demo_frame(1), false).for_model(victim_model);
    let reply = loopback.call(&encode_infer(&req));
    assert_eq!(decode_infer_reply(&reply).unwrap().unwrap_err(), ServeError::Closed);

    // Every other model still serves.
    for &m in MODEL_IDS.iter().filter(|&&m| fleet.route(m) != victim_shard) {
        let req = InferRequest::new(demo_frame(2), true).for_model(m);
        let resp = decode_infer_reply(&loopback.call(&encode_infer(&req))).unwrap();
        assert!(resp.is_ok(), "model {m} on a live shard must keep serving");
    }
    fleet.shutdown();
}
