//! Corrupt-input hardening for the dp-serve wire protocol: every
//! malformed frame must come back as a typed [`WireError`], never a
//! panic, never an over-read, never a silently wrong decode. The
//! fleet's socket transport feeds `decode` whatever bytes arrive, so
//! this surface is adversarial by construction — the sweeps below
//! cover every frame type with truncations, CRC flips, payload byte
//! flips, oversized length headers, and unknown versions/tags.

use dp_serve::batch::{Fidelity, InferRequest, InferResponse, ServeError};
use dp_serve::demo::demo_frame;
use dp_serve::wire::{
    self, decode, Frame, HealthFrame, StatsFrame, MAX_WIRE_ATOMS, WIRE_VERSION,
};
use dp_tensor::wire::{crc32, WireError, Writer};
use std::time::Duration;

/// Deterministic generator for seeded corruption positions.
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Recompute the CRC-32 trailer after an intentional payload patch, so
/// a test reaches the decoder *behind* the checksum.
fn refresh_crc(bytes: &mut [u8]) {
    let n = bytes.len();
    let crc = crc32(&bytes[..n - 4]);
    bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
}

/// One well-formed exemplar of every frame type on the wire.
fn exemplar_frames() -> Vec<(&'static str, Vec<u8>)> {
    let req = InferRequest::new(demo_frame(11), true)
        .for_model(3)
        .from_tenant(7)
        .with_deadline(Duration::from_millis(50));
    let resp = InferResponse {
        energy: -12.5,
        forces: Some(demo_frame(11).pos),
        version: 4,
        degraded: false,
        fidelity: Fidelity::Master,
    };
    let stats = StatsFrame {
        shard: 1,
        requests: 10,
        batches: 2,
        shed: 0,
        deadline_miss: 0,
        breaker_trips: 0,
        degraded: 0,
        eval_failures: 0,
        max_depth: 4,
        p50_ns: 100.0,
        p99_ns: 900.0,
        p999_ns: 1200.0,
    };
    vec![
        ("infer", wire::encode_infer(&req)),
        ("infer_ok", wire::encode_infer_ok(&resp)),
        (
            "error",
            wire::encode_error(&ServeError::SnapshotPruned { version: 2, current: 5 }),
        ),
        ("publish", wire::encode_publish(3, b"model blob bytes")),
        ("publish_ok", wire::encode_publish_ok(3, 2)),
        ("stats_query", wire::encode_stats_query(1)),
        ("stats", wire::encode_stats(&stats)),
        ("health", wire::encode_health()),
        (
            "health_ok",
            wire::encode_health_ok(&HealthFrame { shards: 3, alive: 2, models: 1, tenants: 4 }),
        ),
    ]
}

#[test]
fn every_frame_type_roundtrips_clean() {
    for (name, bytes) in exemplar_frames() {
        decode(&bytes).unwrap_or_else(|e| panic!("{name}: clean frame must decode, got {e}"));
    }
}

#[test]
fn every_truncation_of_every_frame_is_a_typed_error() {
    for (name, bytes) in exemplar_frames() {
        // All short prefixes plus a stride through the long ones.
        let mut lengths: Vec<usize> = (0..bytes.len().min(64)).collect();
        let stride = (bytes.len() / 256).max(1);
        lengths.extend((64..bytes.len()).step_by(stride));
        lengths.push(bytes.len() - 1);
        for len in lengths {
            let e = decode(&bytes[..len])
                .expect_err(&format!("{name}: truncation to {len} bytes must fail"));
            assert!(
                matches!(
                    e,
                    WireError::Truncated { .. } | WireError::BadCrc { .. } | WireError::Invalid(_)
                ),
                "{name}: truncation to {len} gave unexpected error {e:?}"
            );
        }
    }
}

#[test]
fn flipped_crc_trailer_byte_is_rejected_on_every_frame() {
    for (name, bytes) in exemplar_frames() {
        let n = bytes.len();
        for i in n - 4..n {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            match decode(&bad) {
                Err(WireError::BadCrc { stored, computed }) => {
                    assert_ne!(stored, computed, "{name}: trailer byte {i}")
                }
                other => panic!("{name}: trailer flip at {i} gave {other:?}"),
            }
        }
    }
}

#[test]
fn any_single_byte_flip_is_detected_on_every_frame() {
    // The CRC trailer guarantees any single-byte payload corruption is
    // detected before the decoder runs; sweep a stride plus seeded
    // random positions across every frame type.
    let mut rng = XorShift64(0x5eed_f00d);
    for (name, bytes) in exemplar_frames() {
        let stride = (bytes.len() / 128).max(1);
        let mut positions: Vec<usize> = (0..bytes.len()).step_by(stride).collect();
        positions.extend((0..32).map(|_| rng.index(bytes.len())));
        for i in positions {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(
                decode(&bad).is_err(),
                "{name}: 0xFF flip at byte {i} must be detected"
            );
        }
    }
}

#[test]
fn unknown_wire_version_is_rejected_behind_a_valid_checksum() {
    for (name, bytes) in exemplar_frames() {
        // The version is the u16 right after the 4-byte magic.
        let mut bad = bytes.clone();
        bad[4..6].copy_from_slice(&(WIRE_VERSION + 1).to_le_bytes());
        refresh_crc(&mut bad);
        match decode(&bad) {
            Err(WireError::Invalid(m)) => {
                assert!(m.contains("version"), "{name}: want a version diagnostic, got {m}")
            }
            other => panic!("{name}: unknown version gave {other:?}"),
        }
    }
}

#[test]
fn unknown_frame_tag_and_bad_magic_are_rejected() {
    let bytes = wire::encode_health();
    // Tag byte sits right after magic (4) + version (2).
    let mut bad = bytes.clone();
    bad[6] = 0xEE;
    refresh_crc(&mut bad);
    match decode(&bad) {
        Err(WireError::Invalid(m)) => assert!(m.contains("frame type"), "got {m}"),
        other => panic!("unknown tag gave {other:?}"),
    }
    let mut bad = bytes.clone();
    bad[0..4].copy_from_slice(b"NOPE");
    refresh_crc(&mut bad);
    match decode(&bad) {
        Err(WireError::Invalid(m)) => assert!(m.contains("magic"), "got {m}"),
        other => panic!("bad magic gave {other:?}"),
    }
}

#[test]
fn oversized_length_headers_never_allocate_or_over_read() {
    // A hostile atom count: header claims 2^24+1 atoms over a tiny
    // payload. The plausibility gate must refuse before any reserve.
    let mut w = Writer::new();
    w.raw(b"DPWF");
    w.u16(WIRE_VERSION);
    w.u8(1); // Infer
    w.u64(0); // model
    w.u64(0); // tenant
    w.u8(0); // flags
    w.u8(0); // fidelity
    w.u64(u64::MAX); // no deadline
    for _ in 0..3 {
        w.f64(10.0); // cell
    }
    w.u32(0); // no species names
    w.u32(MAX_WIRE_ATOMS + 1); // hostile atom count
    let bytes = w.into_bytes_with_crc();
    match decode(&bytes) {
        Err(WireError::Invalid(m)) => assert!(m.contains("atom count"), "got {m}"),
        other => panic!("oversized atom count gave {other:?}"),
    }

    // A hostile species count trips its own gate.
    let mut w = Writer::new();
    w.raw(b"DPWF");
    w.u16(WIRE_VERSION);
    w.u8(1);
    w.u64(0);
    w.u64(0);
    w.u8(0);
    w.u8(0);
    w.u64(u64::MAX);
    for _ in 0..3 {
        w.f64(10.0);
    }
    w.u32(1 << 30); // hostile species count
    let bytes = w.into_bytes_with_crc();
    match decode(&bytes) {
        Err(WireError::Invalid(m)) => assert!(m.contains("species"), "got {m}"),
        other => panic!("oversized species count gave {other:?}"),
    }

    // A plausible atom count over a truncated payload is Truncated,
    // not a read past the buffer.
    let mut w = Writer::new();
    w.raw(b"DPWF");
    w.u16(WIRE_VERSION);
    w.u8(1);
    w.u64(0);
    w.u64(0);
    w.u8(0);
    w.u8(0);
    w.u64(u64::MAX);
    for _ in 0..3 {
        w.f64(10.0);
    }
    w.u32(0);
    w.u32(1000); // claims 1000 atoms, carries none
    let bytes = w.into_bytes_with_crc();
    match decode(&bytes) {
        Err(WireError::Truncated { .. }) => {}
        other => panic!("undelivered atoms gave {other:?}"),
    }
}

#[test]
fn oversized_publish_blob_length_is_typed() {
    // Patch a publish frame's blob length header (u64 right after the
    // model id) to claim far more bytes than the frame carries.
    let bytes = wire::encode_publish(3, b"model blob bytes");
    // Layout: magic 4 + version 2 + tag 1 + model u64 8 = 15, then the
    // u64 length prefix of `bytes()`.
    let mut bad = bytes.clone();
    bad[15..23].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    refresh_crc(&mut bad);
    match decode(&bad) {
        Err(WireError::Invalid(_) | WireError::Truncated { .. }) => {}
        other => panic!("oversized blob length gave {other:?}"),
    }
}

#[test]
fn unknown_fidelity_degraded_and_flag_bits_are_typed() {
    let req = InferRequest::new(demo_frame(12), false);
    let clean = wire::encode_infer(&req);
    // Fidelity byte: magic 4 + version 2 + tag 1 + model 8 + tenant 8
    // + flags 1 = 24.
    let mut bad = clean.clone();
    bad[24] = 9;
    refresh_crc(&mut bad);
    match decode(&bad) {
        Err(WireError::Invalid(m)) => assert!(m.contains("fidelity"), "got {m}"),
        other => panic!("unknown fidelity gave {other:?}"),
    }
    // Undefined flag bits are refused, not silently ignored.
    let mut bad = clean.clone();
    bad[23] = 0xF0;
    refresh_crc(&mut bad);
    match decode(&bad) {
        Err(WireError::Invalid(m)) => assert!(m.contains("flags"), "got {m}"),
        other => panic!("undefined flags gave {other:?}"),
    }
    // Bad degraded flag on a response frame.
    let resp = InferResponse {
        energy: 1.0,
        forces: None,
        version: 1,
        degraded: false,
        fidelity: Fidelity::Master,
    };
    let mut bad = wire::encode_infer_ok(&resp);
    bad[15] = 7; // degraded byte: 4+2+1+8 = 15
    refresh_crc(&mut bad);
    match decode(&bad) {
        Err(WireError::Invalid(m)) => assert!(m.contains("degraded"), "got {m}"),
        other => panic!("bad degraded flag gave {other:?}"),
    }
}

#[test]
fn trailing_garbage_behind_a_valid_payload_is_rejected() {
    for (name, bytes) in exemplar_frames() {
        let mut bad = bytes[..bytes.len() - 4].to_vec();
        bad.extend_from_slice(&[0xAB; 7]);
        let crc = crc32(&bad);
        bad.extend_from_slice(&crc.to_le_bytes());
        assert!(
            decode(&bad).is_err(),
            "{name}: trailing garbage must be rejected by expect_end"
        );
    }
}

#[test]
fn empty_and_garbage_streams_are_typed_errors() {
    assert!(matches!(decode(&[]), Err(WireError::Truncated { .. })));
    assert!(decode(b"not a frame").is_err());
    assert!(decode(&[0u8; 4]).is_err());
    // A frame that is *only* a valid CRC over an empty payload still
    // fails on the missing magic.
    let crc = crc32(&[]);
    assert!(matches!(
        decode(&crc.to_le_bytes()),
        Err(WireError::Truncated { .. })
    ));
}

#[test]
fn seeded_multi_byte_corruption_storm_never_panics() {
    // 512 seeded corruptions per frame type: 1–8 byte flips at random
    // positions. Decode must return *something* typed every time —
    // this is the no-panic/no-over-read property, the exact error
    // variant is free.
    let mut rng = XorShift64(0xdead_beef_cafe);
    for (name, bytes) in exemplar_frames() {
        for round in 0..512 {
            let mut bad = bytes.clone();
            let flips = 1 + rng.index(8);
            for _ in 0..flips {
                let at = rng.index(bad.len());
                bad[at] ^= (1 + rng.index(255)) as u8;
            }
            // Either it still decodes (flip cancelled out / hit a
            // don't-care bit pattern that re-validated) or it's a
            // typed error; both are fine, panicking is not.
            let _ = std::panic::catch_unwind(|| decode(&bad).map(|_| ()))
                .unwrap_or_else(|_| panic!("{name}: corruption round {round} panicked"));
        }
    }
}

#[test]
fn infer_reply_decoder_rejects_mismatched_frames() {
    // A valid non-reply frame arriving where an infer reply is
    // expected is a typed protocol error.
    let e = wire::decode_infer_reply(&wire::encode_health()).unwrap_err();
    assert!(matches!(e, WireError::Invalid(_)));
    let Frame::Health = decode(&wire::encode_health()).unwrap() else {
        panic!("health frame must still decode as itself")
    };
}
