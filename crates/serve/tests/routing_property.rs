//! Property tests for rendezvous routing: the model-id → shard map
//! must be a pure function, spread load uniformly, and remap the
//! minimum possible key set when the shard topology changes. These are
//! the invariants the fleet's correctness leans on — a pure map means
//! any two routers agree with no coordination; minimal remap means a
//! shard loss does not stampede every model's cache.

use dp_serve::shard::{rendezvous_score, ShardSet};
use std::collections::HashMap;

const MODELS: u64 = 1000;

#[test]
fn routing_is_a_pure_total_function_at_every_shard_count() {
    for shards in 1..=16u32 {
        let set = ShardSet::contiguous(shards);
        for model in 0..MODELS {
            let a = set.route(model).expect("non-empty set routes every id");
            let b = set.route(model).unwrap();
            assert_eq!(a, b, "shards={shards} model={model}: route must be pure");
            assert!(set.contains(a), "shards={shards}: route target must be a member");
        }
    }
    assert_eq!(ShardSet::new([]).route(42), None, "empty set routes nowhere");
}

#[test]
fn routing_is_independent_of_member_enumeration_order() {
    // The same membership presented in any order yields the same map —
    // ShardSet normalizes, and the rendezvous argmax has a total
    // tie-break. Two fleets that merely *listed* their shards
    // differently must agree on every placement.
    let forward = ShardSet::new([0, 1, 2, 3, 4, 5, 6, 7]);
    let shuffled = ShardSet::new([5, 2, 7, 0, 3, 6, 1, 4, 4, 0]);
    for model in 0..MODELS {
        assert_eq!(forward.route(model), shuffled.route(model), "model={model}");
    }
}

#[test]
fn load_is_uniform_within_twice_the_ideal_share() {
    for shards in 1..=16u32 {
        let set = ShardSet::contiguous(shards);
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for model in 0..MODELS {
            *counts.entry(set.route(model).unwrap()).or_default() += 1;
        }
        let ideal = MODELS as f64 / f64::from(shards);
        for &shard in set.ids() {
            let got = counts.get(&shard).copied().unwrap_or(0) as f64;
            assert!(
                got < 2.0 * ideal,
                "shards={shards} shard={shard}: {got} of {MODELS} ids \
                 exceeds 2x the ideal share {ideal:.1}"
            );
            assert!(
                got > 0.0 || ideal < 2.0,
                "shards={shards} shard={shard}: starved (0 of {MODELS} ids)"
            );
        }
    }
}

#[test]
fn removing_one_shard_remaps_only_its_own_keys() {
    // The rendezvous property: dropping shard `s` moves exactly the
    // models that lived on `s`; every other placement is untouched.
    for shards in 2..=16u32 {
        let full = ShardSet::contiguous(shards);
        for victim in full.ids().to_vec() {
            let reduced = full.without(victim);
            let mut moved = 0u64;
            for model in 0..MODELS {
                let before = full.route(model).unwrap();
                let after = reduced.route(model).unwrap();
                if before == victim {
                    moved += 1;
                    assert_ne!(after, victim, "model={model} still routed to the removed shard");
                } else {
                    assert_eq!(
                        before, after,
                        "shards={shards} victim={victim} model={model}: \
                         a surviving shard's key moved"
                    );
                }
            }
            // The victim's share really does redistribute (it owned
            // roughly MODELS/shards keys).
            assert!(
                moved > 0,
                "shards={shards} victim={victim}: victim owned no keys out of {MODELS}"
            );
        }
    }
}

#[test]
fn adding_a_shard_steals_only_what_it_wins() {
    // The dual property: growing the set only moves keys *onto* the
    // new member, never between old members.
    for shards in 1..=15u32 {
        let small = ShardSet::contiguous(shards);
        let grown = ShardSet::contiguous(shards + 1);
        for model in 0..MODELS {
            let before = small.route(model).unwrap();
            let after = grown.route(model).unwrap();
            assert!(
                after == before || after == shards,
                "shards={shards} model={model}: moved {before} -> {after}, \
                 but only the new shard {shards} may win keys"
            );
        }
    }
}

#[test]
fn rendezvous_scores_match_pinned_goldens() {
    // Golden scores pin the hash constants: a flipped salt, a changed
    // mixer constant, or a reordered mix round shows up here even
    // though purity and uniformity would still hold. The fleet's
    // placement is part of its persistent contract — two builds must
    // agree on where a model lives.
    let goldens: [(u64, u32, u64); 6] = [
        (0, 0, 0x0188_bf9e_b088_37e8),
        (1, 0, 0x302c_9333_8dfa_cdb1),
        (0, 1, 0x3636_1327_b1bb_377e),
        (12345, 7, 0x9dc0_a474_2da7_9411),
        (u64::MAX, 15, 0x4b5a_db07_98d2_857b),
        (0xdead_beef, 3, 0xfb5a_c71d_b641_0b8b),
    ];
    for (model, shard, score) in goldens {
        assert_eq!(
            rendezvous_score(model, shard),
            score,
            "score({model}, {shard}) drifted from its pinned golden"
        );
    }
    // Pinned placements over the golden topology: these exact
    // assignments were produced by the shipped constants and must
    // never drift silently.
    let set = ShardSet::contiguous(8);
    let placements: Vec<u32> = (0..32).map(|m| set.route(m).unwrap()).collect();
    assert_eq!(
        placements,
        [
            6, 2, 3, 5, 0, 7, 1, 0, 6, 7, 4, 0, 5, 4, 1, 3, 3, 7, 3, 4, 2, 5, 0, 6, 3, 7, 4,
            6, 3, 0, 3, 0
        ],
        "model placement over 8 shards drifted from the pinned golden"
    );
    // Distinct inputs produce distinct scores in practice (64-bit
    // mixer, 6 probes): a degenerate constant-returning hash fails.
    let mut scores: Vec<u64> = goldens.iter().map(|g| g.2).collect();
    scores.sort_unstable();
    scores.dedup();
    assert_eq!(scores.len(), 6, "mixer collapsed distinct inputs");
}
