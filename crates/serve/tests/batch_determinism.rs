//! Batch determinism: K frames served through the batching engine must
//! be bitwise identical to K sequential direct calls, at every pool
//! thread count. Requests are computationally independent (each writes
//! only its own response slot, nothing is reduced across requests), so
//! coalescing is a scheduling detail — the same contract as
//! `dp_pool::parallel_for` (DESIGN §8), checked here end to end
//! through the queue, the dispatcher and the per-snapshot cache.

use dp_serve::demo::{demo_frame, demo_model};
use dp_serve::{BatchPolicy, Engine, InferRequest, ModelRegistry};
use std::sync::Arc;
use std::time::Duration;

const FRAMES: usize = 10;

#[test]
fn batched_results_match_sequential_bitwise_at_every_thread_count() {
    let model = demo_model(3);
    let frames: Vec<_> = (0..FRAMES as u64).map(|i| demo_frame(100 + i)).collect();
    // Ground truth: sequential single-frame predictions, no engine.
    let expected: Vec<_> = frames.iter().map(|f| model.predict(f)).collect();

    for &threads in &[1usize, 2, 8] {
        dp_pool::set_threads(threads);
        let registry = Arc::new(ModelRegistry::new(model.clone()));
        let engine = Engine::start(
            registry,
            BatchPolicy {
                max_batch: FRAMES,
                max_wait: Duration::from_millis(50),
            },
        );
        // Submit everything before waiting so the dispatcher coalesces
        // the requests into real multi-frame batches.
        let tickets: Vec<_> = frames
            .iter()
            .map(|f| {
                engine
                    .submit(InferRequest::new(f.clone(), true))
                    .expect("engine is live")
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().expect("request must be served");
            assert_eq!(
                resp.energy.to_bits(),
                expected[i].energy.to_bits(),
                "frame {i} energy differs at {threads} threads"
            );
            let forces = resp.forces.expect("forces were requested");
            assert_eq!(forces.len(), expected[i].forces.len());
            for (a, b) in forces.iter().zip(&expected[i].forces) {
                assert_eq!(
                    a.0.map(f64::to_bits),
                    b.0.map(f64::to_bits),
                    "frame {i} forces differ at {threads} threads"
                );
            }
        }
        assert!(
            engine.stats().mean_batch > 1.0,
            "requests must actually have been coalesced at {threads} threads"
        );
        engine.shutdown();
    }
    dp_pool::set_threads(1);
}
