//! `run_published` failure paths, end to end against a live registry
//! and engine: a publish whose bytes are corrupted in flight must be
//! rejected by `model_io` validation *before* anything reaches the
//! serving path, recorded on the stage report, and skipped — the
//! registry stays on its last-good version and serving is bitwise
//! stable across the failed publish.

use deepmd_core::model_io;
use dp_data::generate::GenScale;
use dp_mdsim::systems::PaperSystem;
use dp_serve::chaos::ChaosPlan;
use dp_serve::{BatchPolicy, Engine, ModelRegistry};
use dp_train::online::{shards_by_temperature, FidelitySet, OnlineLoop};
use dp_train::recipes::{setup, ModelScale};
use dp_optim::fekf::FekfConfig;
use dp_train::{RobustConfig, TrainConfig};

#[test]
fn corrupt_publish_is_rejected_recorded_and_serving_stays_on_last_good() {
    let scale = GenScale { frames_per_temperature: 8, equilibration: 20, stride: 2 };
    let mut s = setup(PaperSystem::Al, &scale, ModelScale::Small, 6);
    let shards = shards_by_temperature(&s.train);
    let probe = s.train.frames[0].clone();

    let registry = std::sync::Arc::new(ModelRegistry::new(s.model.clone()));
    let engine = Engine::start(std::sync::Arc::clone(&registry), BatchPolicy::default());
    let baseline = engine.infer(probe.clone(), true).expect("engine is live");
    assert_eq!(baseline.version, 1);

    let chaos = ChaosPlan { seed: 11, corrupt_publish_prob: 1.0, ..ChaosPlan::none() };
    let looper = OnlineLoop {
        cfg: TrainConfig { batch_size: 4, max_epochs: 2, eval_frames: 8, ..Default::default() },
        fekf: FekfConfig::default(),
        robust: RobustConfig::default(),
    };
    // Stage 0's bytes are corrupted in flight (single deterministic bit
    // flip); stage 1 publishes clean. The serving-stability probe runs
    // at stage 1 entry — after the corrupt publish was rejected, before
    // anything new lands.
    let reports = looper.run_published(&mut s.model, &shards[..2], &mut |model, report| {
        let mut bytes = model_io::to_bytes(model);
        if report.stage == 0 {
            chaos.corrupt_bytes(&mut bytes, report.stage as u64);
        } else {
            // The corrupt publish never reached the registry: serving
            // is still on last-good v1, bitwise identical to before the
            // failed publish.
            let after_fail = engine.infer(probe.clone(), true).expect("engine is live");
            assert_eq!(after_fail.version, 1, "registry must stay on last-good");
            assert_eq!(after_fail.energy.to_bits(), baseline.energy.to_bits());
            let fb = baseline.forces.as_ref().expect("forces were requested");
            for (a, b) in after_fail.forces.unwrap().iter().zip(fb) {
                assert_eq!(a.0.map(f64::to_bits), b.0.map(f64::to_bits));
            }
        }
        registry
            .publish_bytes(&bytes)
            .map(|_| FidelitySet::default())
            .map_err(|e| e.to_string())
    });

    // The corrupt publish was rejected by model_io validation and
    // recorded on the stage report — not aborted, not silently dropped.
    assert!(reports[0].succeeded(), "the retrain itself was fine");
    assert!(!reports[0].published());
    let why = reports[0].publish_failure.as_deref().expect("failure recorded");
    assert!(why.contains("checksum"), "model_io names the reason: {why}");

    // Stage 1's clean publish goes through and is immediately servable.
    assert!(reports[1].published(), "stage 1 publish failed: {:?}", reports[1].publish_failure);
    assert_eq!(registry.current_version(), 2);
    assert_eq!(engine.infer(probe, false).unwrap().version, 2);
    engine.shutdown();
}
