//! Concurrent hot-swap consistency: N client threads hammer the engine
//! with the same probe frame while the main thread publishes M model
//! versions. Every response must come from exactly one published
//! snapshot — its energy bitwise equal to what that version computes
//! on its own — and each client's observed versions must be monotone.
//! A torn read (weights from one version, statistics from another)
//! would produce an energy matching no version.

use dp_serve::demo::{demo_frame, demo_model};
use dp_serve::{BatchPolicy, Engine, ModelRegistry};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 40;
const VERSIONS: u64 = 4;

#[test]
fn every_response_comes_from_exactly_one_published_version() {
    let probe = demo_frame(77);
    // Ground truth per version, computed outside the serving stack.
    let models: Vec<_> = (1..=VERSIONS).map(demo_model).collect();
    let expected: HashMap<u64, u64> = models
        .iter()
        .enumerate()
        .map(|(i, m)| (i as u64 + 1, m.predict(&probe).energy.to_bits()))
        .collect();
    // Distinct seeds must give distinct energies, or the test is vacuous.
    let distinct: std::collections::HashSet<_> = expected.values().collect();
    assert_eq!(distinct.len(), VERSIONS as usize, "versions must be distinguishable");

    let registry = Arc::new(ModelRegistry::new(models[0].clone()));
    let engine = Engine::start(
        Arc::clone(&registry),
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_micros(500),
        },
    );

    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            let probe = probe.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let mut seen = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for _ in 0..REQUESTS_PER_CLIENT {
                    let resp = engine.infer(probe.clone(), false).expect("engine is live");
                    seen.push((resp.version, resp.energy.to_bits()));
                }
                seen
            })
        })
        .collect();

    barrier.wait();
    for m in &models[1..] {
        std::thread::sleep(Duration::from_millis(5));
        registry.publish(m.clone()).expect("publish must succeed");
    }

    for c in clients {
        let seen = c.join().expect("client must not panic");
        assert_eq!(seen.len(), REQUESTS_PER_CLIENT);
        for &(version, bits) in &seen {
            let want = expected
                .get(&version)
                .unwrap_or_else(|| panic!("response tagged with unknown version {version}"));
            assert_eq!(
                bits, *want,
                "version {version} served an energy that version does not compute — torn read"
            );
        }
        assert!(
            seen.windows(2).all(|w| w[0].0 <= w[1].0),
            "client observed versions out of order: {:?}",
            seen.iter().map(|s| s.0).collect::<Vec<_>>()
        );
    }

    // After all publishes, new requests land on the last version.
    let last = engine.infer(probe, false).unwrap();
    assert_eq!(last.version, VERSIONS);
    assert_eq!(engine.stats().swaps, VERSIONS - 1);
    engine.shutdown();
}
